/**
 * @file
 * Functional wide-BVH traversal implementation.
 */

#include "src/bvh/traverse.hpp"

#include <algorithm>
#include <vector>

#include "src/util/check.hpp"

namespace sms {

ChildHits
intersectNodeChildren(const WideNode &node, const Ray &ray)
{
    ChildHits hits;
    hits.tests = node.child_count;
    for (uint8_t i = 0; i < node.child_count; ++i) {
        float t;
        if (node.child_bounds[i].intersect(ray, t)) {
            hits.refs[hits.count] = node.children[i];
            hits.t[hits.count] = t;
            ++hits.count;
        }
    }
    // Insertion sort nearest-first; at most six entries.
    for (int i = 1; i < hits.count; ++i) {
        ChildRef ref = hits.refs[i];
        float t = hits.t[i];
        int j = i - 1;
        while (j >= 0 && hits.t[j] > t) {
            hits.refs[j + 1] = hits.refs[j];
            hits.t[j + 1] = hits.t[j];
            --j;
        }
        hits.refs[j + 1] = ref;
        hits.t[j + 1] = t;
    }
    return hits;
}

bool
intersectLeaf(const Scene &scene, const WideBvh &bvh, ChildRef leaf,
              Ray &ray, HitRecord &hit, bool any_hit, uint32_t &tested)
{
    SMS_ASSERT(leaf.isLeaf(), "intersectLeaf on non-leaf reference");
    bool found = false;
    const auto &prim_indices = bvh.primIndices();
    uint32_t offset = leaf.primOffset();
    uint32_t count = leaf.primCount();
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t prim = prim_indices[offset + i];
        ++tested;
        if (scene.intersectPrimitive(prim, ray, hit)) {
            found = true;
            if (any_hit)
                return true;
        }
    }
    return found;
}

namespace {

/** Shared DFS used by both closest-hit and any-hit queries. */
HitRecord
traverseImpl(const Scene &scene, const WideBvh &bvh, const Ray &in_ray,
             bool any_hit, TraversalCounters *counters)
{
    HitRecord hit;
    if (bvh.empty())
        return hit;

    Ray ray = in_ray;
    TraversalCounters local;
    TraversalCounters &ctr = counters ? *counters : local;

    std::vector<ChildRef> stack;
    stack.reserve(64);
    ChildRef current = bvh.rootRef();

    auto track_depth = [&]() {
        if (stack.size() > ctr.max_stack_depth)
            ctr.max_stack_depth = static_cast<uint32_t>(stack.size());
    };

    for (;;) {
        if (current.isInternal()) {
            ++ctr.nodes_visited;
            const WideNode &node = bvh.nodes()[current.nodeIndex()];
            ChildHits hits = intersectNodeChildren(node, ray);
            ctr.box_tests += hits.tests;
            if (hits.count > 0) {
                // Push the far children so the nearest is visited first.
                for (int i = hits.count - 1; i >= 1; --i) {
                    stack.push_back(hits.refs[i]);
                    ++ctr.stack_pushes;
                }
                track_depth();
                current = hits.refs[0];
                continue;
            }
        } else if (current.isLeaf()) {
            ++ctr.leaf_visits;
            uint32_t tested = 0;
            bool found =
                intersectLeaf(scene, bvh, current, ray, hit, any_hit,
                              tested);
            ctr.prim_tests += tested;
            if (found && any_hit)
                return hit;
        } else {
            panic("invalid child reference during traversal");
        }

        if (stack.empty())
            break;
        current = stack.back();
        stack.pop_back();
        ++ctr.stack_pops;
    }
    return hit;
}

} // namespace

HitRecord
traverseClosest(const Scene &scene, const WideBvh &bvh, const Ray &ray,
                TraversalCounters *counters)
{
    return traverseImpl(scene, bvh, ray, false, counters);
}

bool
traverseAnyHit(const Scene &scene, const WideBvh &bvh, const Ray &ray,
               TraversalCounters *counters)
{
    return traverseImpl(scene, bvh, ray, true, counters).valid();
}

} // namespace sms
