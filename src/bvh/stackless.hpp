/**
 * @file
 * Stackless wide-BVH traversal: parent/slot links plus the per-node
 * resume logic shared by the functional reference traverser and the
 * timing simulator.
 *
 * Instead of pushing far children, a stackless lane remembers only the
 * child reference it is visiting. When a subtree is exhausted it
 * follows the parent link stored in the node's 8-byte metadata word
 * (see WideBvh::kNodeBytes) back to the parent, re-tests the child
 * boxes, and continues with the first not-yet-visited child in the
 * nearest-first order intersectNodeChildren() would have produced.
 * Backtracking therefore re-fetches and re-tests interior nodes — the
 * architecture's overhead — but needs zero per-lane stack state and
 * generates zero stack traffic by construction.
 *
 * Bit-identity with the stack traversal (DESIGN.md invariant 2) rests
 * on two properties of the slab test in Aabb::intersect():
 *  - a child's entry distance t0 = max(tMin, per-axis near planes) does
 *    not depend on ray.tMax, so re-testing after tMax tightened yields
 *    the same t0 and the same (t0, slot) visit order; and
 *  - a child culled by a tightened tMax has t0 > tMax, every primitive
 *    under it has t >= t0 > tMax, and the primitive test rejects
 *    t > tMax — so pruned subtrees could never have updated the hit,
 *    not even on exact t ties (those are accepted inclusively and the
 *    last accepted primitive wins, which pruning does not change).
 */

#ifndef SMS_BVH_STACKLESS_HPP
#define SMS_BVH_STACKLESS_HPP

#include <cstdint>
#include <vector>

#include "src/bvh/traverse.hpp"
#include "src/bvh/wide_bvh.hpp"

namespace sms {

/**
 * Parent/slot links for every interior node, the stackless analogue of
 * escape ropes. Pure function of the BVH topology; rebuilt on demand
 * (O(nodes)) rather than serialized with the snapshot.
 */
struct StacklessLinks
{
    /** parent[] value of the root node. */
    static constexpr uint32_t kNoParent = 0xffffffffu;

    /** Per interior node: parent node index (kNoParent for the root). */
    std::vector<uint32_t> parent;
    /** Per interior node: its child slot within the parent. */
    std::vector<uint8_t> slot;

    static StacklessLinks build(const WideBvh &bvh);

    bool empty() const { return parent.empty(); }
};

/** Per-slot box-test result of one interior node. */
struct SlotHits
{
    /**
     * Entry distance per child slot, computed for every slot (hit or
     * not) so a resume slot that has since been culled still orders
     * correctly.
     */
    std::array<float, kWideBvhWidth> t;
    /** Bit i set when child slot i overlaps [tMin, tMax]. */
    uint8_t hit_mask = 0;
    /** Ray-box tests performed (== child_count). */
    int tests = 0;
};

/**
 * Test all child slots of @p node. Bit-equivalent to calling
 * Aabb::intersect() per child (same float operations in the same
 * order), but additionally reports the entry distance of missed slots.
 */
SlotHits intersectNodeSlots(const WideNode &node, const Ray &ray);

/**
 * The next child slot to visit in nearest-first order.
 *
 * @param resume_slot slot the lane just returned from, or -1 on the
 *        first visit of the node
 * @return the hit slot with the smallest (t, slot) strictly after
 *         (t[resume_slot], resume_slot), or -1 to backtrack
 */
int nextStacklessSlot(const SlotHits &hits, int resume_slot);

/**
 * Reference closest-hit traversal through parent links; bit-identical
 * to traverseClosest() including the winning primitive id.
 */
HitRecord traverseClosestStackless(const Scene &scene, const WideBvh &bvh,
                                   const StacklessLinks &links,
                                   const Ray &ray,
                                   TraversalCounters *counters = nullptr);

/** Reference any-hit traversal through parent links. */
bool traverseAnyHitStackless(const Scene &scene, const WideBvh &bvh,
                             const StacklessLinks &links, const Ray &ray,
                             TraversalCounters *counters = nullptr);

} // namespace sms

#endif // SMS_BVH_STACKLESS_HPP
