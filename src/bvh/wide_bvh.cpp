/**
 * @file
 * Binary-to-wide BVH collapse and layout statistics.
 */

#include "src/bvh/wide_bvh.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace sms {

WideBvh
WideBvh::build(const Scene &scene, const BvhBuildParams &params)
{
    BinaryBvh binary = BinaryBvh::build(scene, params);
    return fromBinary(scene, binary, params.wide_width);
}

WideBvh
WideBvh::fromBinary(const Scene &scene, const BinaryBvh &binary,
                    int wide_width)
{
    (void)scene;
    WideBvh wide;
    SMS_ASSERT(wide_width >= 2 && wide_width <= kWideBvhWidth,
               "wide width %d out of range", wide_width);
    wide.wide_width_ = wide_width;
    if (binary.empty())
        return wide;
    wide.prim_indices_ = binary.primIndices();
    wide.root_ref_ = wide.collapse(binary, binary.rootIndex());
    return wide;
}

WideBvh
WideBvh::fromParts(int wide_width, std::vector<WideNode> nodes,
                   std::vector<uint32_t> prim_indices, ChildRef root_ref)
{
    SMS_ASSERT(wide_width >= 2 && wide_width <= kWideBvhWidth,
               "wide width %d out of range", wide_width);
    WideBvh wide;
    wide.wide_width_ = wide_width;
    wide.nodes_ = std::move(nodes);
    wide.prim_indices_ = std::move(prim_indices);
    wide.root_ref_ = root_ref;
    return wide;
}

ChildRef
WideBvh::collapse(const BinaryBvh &binary, uint32_t binary_index)
{
    const auto &bnodes = binary.nodes();
    const BinaryNode &bnode = bnodes[binary_index];
    if (bnode.isLeaf()) {
        SMS_ASSERT(bnode.prim_count <= 63,
                   "leaf with %u prims exceeds ChildRef count field",
                   bnode.prim_count);
        return ChildRef::makeLeaf(bnode.prim_offset, bnode.prim_count);
    }

    // Gather up to kWideBvhWidth children by repeatedly expanding the
    // internal candidate with the largest surface area — the standard
    // greedy collapse used by wide-BVH builders.
    std::vector<uint32_t> members{bnode.left, bnode.right};
    for (;;) {
        if (members.size() >= static_cast<size_t>(wide_width_))
            break;
        int grow = -1;
        float best_area = -1.0f;
        for (size_t i = 0; i < members.size(); ++i) {
            const BinaryNode &m = bnodes[members[i]];
            if (m.isLeaf())
                continue;
            float area = m.bounds.surfaceArea();
            if (area > best_area) {
                best_area = area;
                grow = static_cast<int>(i);
            }
        }
        if (grow < 0)
            break; // all members are leaves
        uint32_t victim = members[static_cast<size_t>(grow)];
        members[static_cast<size_t>(grow)] = bnodes[victim].left;
        members.push_back(bnodes[victim].right);
    }

    uint32_t node_index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    // Note: children are collapsed *after* reserving this node's slot, so
    // the nodes_ vector may reallocate; index via nodes_[node_index].
    std::array<ChildRef, kWideBvhWidth> refs;
    std::array<Aabb, kWideBvhWidth> bounds;
    uint8_t count = static_cast<uint8_t>(members.size());
    for (uint8_t i = 0; i < count; ++i) {
        bounds[i] = bnodes[members[i]].bounds;
        refs[i] = collapse(binary, members[i]);
    }
    WideNode &node = nodes_[node_index];
    node.child_count = count;
    node.child_bounds = bounds;
    node.children = refs;
    return ChildRef::makeInternal(node_index);
}

uint64_t
WideBvh::primitiveAddress(const Scene &scene, uint32_t prim_id) const
{
    if (prim_id < scene.triangleCount())
        return kTriBase + prim_id * kTriBytes;
    return kSphereBase + (prim_id - scene.triangleCount()) * kSphereBytes;
}

uint64_t
WideBvh::primitiveFetchBytes(const Scene &scene, uint32_t prim_id) const
{
    return prim_id < scene.triangleCount() ? kTriBytes : kSphereBytes;
}

uint32_t
WideBvh::depthFrom(ChildRef ref) const
{
    if (!ref.isInternal())
        return 0;
    std::vector<std::pair<uint32_t, uint32_t>> stack{{ref.nodeIndex(), 1}};
    uint32_t max_depth = 0;
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const WideNode &node = nodes_[idx];
        for (uint8_t i = 0; i < node.child_count; ++i)
            if (node.children[i].isInternal())
                stack.push_back({node.children[i].nodeIndex(), d + 1});
    }
    return max_depth;
}

WideBvhStats
WideBvh::computeStats(const Scene &scene) const
{
    WideBvhStats stats;
    stats.node_count = static_cast<uint32_t>(nodes_.size());
    uint64_t child_total = 0;
    uint64_t leaf_prim_total = 0;
    for (const WideNode &node : nodes_) {
        child_total += node.child_count;
        for (uint8_t i = 0; i < node.child_count; ++i) {
            if (node.children[i].isLeaf()) {
                ++stats.leaf_count;
                leaf_prim_total += node.children[i].primCount();
            }
        }
    }
    stats.max_depth = depthFrom(root_ref_);
    stats.avg_children =
        nodes_.empty() ? 0.0
                       : static_cast<double>(child_total) / nodes_.size();
    stats.avg_leaf_prims =
        stats.leaf_count == 0
            ? 0.0
            : static_cast<double>(leaf_prim_total) / stats.leaf_count;
    stats.footprint_bytes = nodes_.size() * kNodeBytes +
                            prim_indices_.size() * 4 +
                            scene.primitiveDataBytes();
    return stats;
}

} // namespace sms
