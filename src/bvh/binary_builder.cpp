/**
 * @file
 * Binned-SAH binary BVH builder.
 *
 * Standard top-down construction: at each node, primitives are binned by
 * centroid along each axis, the cheapest SAH split is chosen, and the
 * node becomes a leaf when small enough or when no split beats the leaf
 * cost.
 */

#include "src/bvh/binary_bvh.hpp"

#include <algorithm>
#include <limits>

#include "src/util/check.hpp"

namespace sms {

namespace {

/** Per-primitive build record. */
struct PrimRef
{
    Aabb bounds;
    Vec3 centroid;
    uint32_t id;
};

/** One SAH bin: bounds and primitive count. */
struct Bin
{
    Aabb bounds;
    uint32_t count = 0;
};

} // namespace

/** Recursive builder working over a mutable PrimRef span. */
class BinaryBuilder
{
  public:
    BinaryBuilder(BinaryBvh &out, std::vector<PrimRef> &refs,
                  const BvhBuildParams &params)
        : out_(out), refs_(refs), params_(params)
    {}

    /** Build the subtree over refs [begin, end); returns node index. */
    uint32_t
    buildRange(uint32_t begin, uint32_t end)
    {
        SMS_ASSERT(end > begin, "empty build range");
        uint32_t node_idx = static_cast<uint32_t>(out_.nodes_.size());
        out_.nodes_.emplace_back();

        Aabb bounds;
        Aabb centroid_bounds;
        for (uint32_t i = begin; i < end; ++i) {
            bounds.extend(refs_[i].bounds);
            centroid_bounds.extend(refs_[i].centroid);
        }
        out_.nodes_[node_idx].bounds = bounds;

        uint32_t count = end - begin;
        if (count <= static_cast<uint32_t>(params_.max_leaf_prims)) {
            makeLeaf(node_idx, begin, end);
            return node_idx;
        }

        int best_axis = -1;
        int best_bin = -1;
        float best_cost = std::numeric_limits<float>::max();
        const int nbins = params_.sah_bins;

        for (int axis = 0; axis < 3; ++axis) {
            float lo = centroid_bounds.lo[axis];
            float hi = centroid_bounds.hi[axis];
            if (hi - lo < 1.0e-8f)
                continue; // degenerate axis; all centroids coincide

            std::vector<Bin> bins(nbins);
            float scale = nbins / (hi - lo);
            for (uint32_t i = begin; i < end; ++i) {
                int b = static_cast<int>((refs_[i].centroid[axis] - lo) *
                                         scale);
                b = std::clamp(b, 0, nbins - 1);
                bins[b].bounds.extend(refs_[i].bounds);
                bins[b].count += 1;
            }

            // Sweep: suffix areas first, then prefix while scoring.
            std::vector<float> right_area(nbins, 0.0f);
            std::vector<uint32_t> right_count(nbins, 0);
            Aabb acc;
            uint32_t cnt = 0;
            for (int b = nbins - 1; b > 0; --b) {
                acc.extend(bins[b].bounds);
                cnt += bins[b].count;
                right_area[b] = acc.surfaceArea();
                right_count[b] = cnt;
            }
            acc = Aabb();
            cnt = 0;
            for (int b = 0; b < nbins - 1; ++b) {
                acc.extend(bins[b].bounds);
                cnt += bins[b].count;
                if (cnt == 0 || right_count[b + 1] == 0)
                    continue;
                float cost = acc.surfaceArea() * cnt +
                             right_area[b + 1] * right_count[b + 1];
                if (cost < best_cost) {
                    best_cost = cost;
                    best_axis = axis;
                    best_bin = b;
                }
            }
        }

        uint32_t mid;
        if (best_axis < 0) {
            // All centroids coincide: split in half by index.
            mid = begin + count / 2;
        } else {
            // Compare SAH split cost against the leaf cost.
            float leaf_cost = params_.prim_cost * count;
            float split_cost =
                2.0f * params_.node_cost +
                params_.prim_cost * best_cost /
                    std::max(bounds.surfaceArea(), 1.0e-12f);
            if (split_cost >= leaf_cost && count <= 8) {
                // SAH may terminate early only for small ranges; GPU
                // driver BVHs keep leaves tiny, and large leaves would
                // flatten the tree depth the paper's stacks exercise.
                makeLeaf(node_idx, begin, end);
                return node_idx;
            }

            float lo = centroid_bounds.lo[best_axis];
            float hi = centroid_bounds.hi[best_axis];
            float scale = params_.sah_bins / (hi - lo);
            auto *split_point = std::partition(
                refs_.data() + begin, refs_.data() + end,
                [&](const PrimRef &r) {
                    int b = static_cast<int>(
                        (r.centroid[best_axis] - lo) * scale);
                    b = std::clamp(b, 0, params_.sah_bins - 1);
                    return b <= best_bin;
                });
            mid = static_cast<uint32_t>(split_point - refs_.data());
            if (mid == begin || mid == end)
                mid = begin + count / 2; // binning failed; fall back
        }

        uint32_t left = buildRange(begin, mid);
        uint32_t right = buildRange(mid, end);
        out_.nodes_[node_idx].left = left;
        out_.nodes_[node_idx].right = right;
        out_.nodes_[node_idx].prim_count = 0;
        return node_idx;
    }

  private:
    void
    makeLeaf(uint32_t node_idx, uint32_t begin, uint32_t end)
    {
        BinaryNode &node = out_.nodes_[node_idx];
        node.prim_offset = static_cast<uint32_t>(out_.prim_indices_.size());
        node.prim_count = static_cast<uint16_t>(end - begin);
        for (uint32_t i = begin; i < end; ++i)
            out_.prim_indices_.push_back(refs_[i].id);
    }

    BinaryBvh &out_;
    std::vector<PrimRef> &refs_;
    const BvhBuildParams &params_;
};

BinaryBvh
BinaryBvh::build(const Scene &scene, const BvhBuildParams &params)
{
    BinaryBvh bvh;
    uint32_t n = scene.primitiveCount();
    if (n == 0)
        return bvh;

    std::vector<PrimRef> refs(n);
    for (uint32_t i = 0; i < n; ++i) {
        refs[i].bounds = scene.primitiveBounds(i);
        refs[i].centroid = scene.primitiveCentroid(i);
        refs[i].id = i;
    }

    bvh.nodes_.reserve(2 * n);
    bvh.prim_indices_.reserve(n);
    BinaryBuilder builder(bvh, refs, params);
    builder.buildRange(0, n);
    return bvh;
}

uint32_t
BinaryBvh::depth() const
{
    if (nodes_.empty())
        return 0;
    // Iterative DFS to avoid recursion limits on deep trees.
    std::vector<std::pair<uint32_t, uint32_t>> stack{{0, 0}};
    uint32_t max_depth = 0;
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const BinaryNode &node = nodes_[idx];
        if (!node.isLeaf()) {
            stack.push_back({node.left, d + 1});
            stack.push_back({node.right, d + 1});
        }
    }
    return max_depth;
}

double
BinaryBvh::sahCost(const BvhBuildParams &params) const
{
    if (nodes_.empty())
        return 0.0;
    double root_area = nodes_[0].bounds.surfaceArea();
    if (root_area <= 0.0)
        return 0.0;
    double cost = 0.0;
    for (const BinaryNode &node : nodes_) {
        double rel = node.bounds.surfaceArea() / root_area;
        cost += rel * (node.isLeaf() ? params.prim_cost * node.prim_count
                                     : params.node_cost);
    }
    return cost;
}

} // namespace sms
