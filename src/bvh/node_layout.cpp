/**
 * @file
 * Quantized node-layout builder: conservative per-node grid encoding.
 */

#include "src/bvh/node_layout.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace sms {

std::string
NodeLayoutConfig::name() const
{
    if (!isQuantized())
        return "exact";
    return "q" + std::to_string(bits_per_plane);
}

namespace {

/** Mutable per-axis access (Vec3::operator[] is read-only). */
inline float &
axisRef(Vec3 &v, int axis)
{
    return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
}

/**
 * Quantize one node's child boxes onto a grid anchored at the node's
 * min corner with per-axis power-of-two scales, then decode them back.
 * Returns false when float rounding broke containment at the given
 * exponents, in which case the caller retries with coarser scales.
 */
bool
encodeNode(const WideNode &in, uint32_t bits, const Vec3 &origin,
           const int e[3], WideNode &out)
{
    const float maxq = static_cast<float>((1u << bits) - 1);
    for (uint8_t c = 0; c < in.child_count; ++c) {
        const Aabb &exact = in.child_bounds[c];
        Aabb decoded;
        for (int axis = 0; axis < 3; ++axis) {
            float scale = std::ldexp(1.0f, e[axis]);
            float qlo = std::floor((exact.lo[axis] - origin[axis]) / scale);
            float qhi = std::ceil((exact.hi[axis] - origin[axis]) / scale);
            if (qlo < 0.0f)
                qlo = 0.0f;
            if (qhi > maxq)
                qhi = maxq;
            if (qhi < qlo)
                qhi = qlo;
            float dlo = origin[axis] + qlo * scale;
            float dhi = origin[axis] + qhi * scale;
            // Float rounding in the divide/multiply round trip can land
            // a decoded plane on the wrong side of the exact one; walk
            // the grid outward until containment holds.
            while (dlo > exact.lo[axis] && qlo > 0.0f) {
                qlo -= 1.0f;
                dlo = origin[axis] + qlo * scale;
            }
            while (dhi < exact.hi[axis] && qhi < maxq) {
                qhi += 1.0f;
                dhi = origin[axis] + qhi * scale;
            }
            if (dlo > exact.lo[axis] || dhi < exact.hi[axis])
                return false;
            axisRef(decoded.lo, axis) = dlo;
            axisRef(decoded.hi, axis) = dhi;
        }
        out.child_bounds[c] = decoded;
    }
    return true;
}

} // namespace

void
QuantizedBvh::build(const WideBvh &bvh, const NodeLayoutConfig &layout)
{
    SMS_ASSERT(layout.isQuantized(),
               "QuantizedBvh::build with a non-quantized layout");
    SMS_ASSERT(layout.bits_per_plane >= 1 && layout.bits_per_plane <= 16,
               "bits_per_plane out of range [1, 16]");
    layout_ = layout;
    nodes_.clear();
    nodes_.reserve(bvh.nodes().size());

    const uint32_t bits = layout.bits_per_plane;
    const float maxq = static_cast<float>((1u << bits) - 1);

    for (const WideNode &in : bvh.nodes()) {
        WideNode out = in; // refs, counts, and box array shape carry over
        if (in.child_count > 0) {
            // Grid origin: the min corner over all valid children, so
            // every quantized coordinate is non-negative.
            Vec3 origin = in.child_bounds[0].lo;
            Vec3 top = in.child_bounds[0].hi;
            for (uint8_t c = 1; c < in.child_count; ++c) {
                origin = min(origin, in.child_bounds[c].lo);
                top = max(top, in.child_bounds[c].hi);
            }
            // Per-axis power-of-two scale: the smallest 2^e whose grid
            // spans the node extent in maxq steps. Power-of-two scales
            // keep decode exact-ish and make the stored exponent 1 byte.
            int e[3];
            for (int axis = 0; axis < 3; ++axis) {
                float extent = top[axis] - origin[axis];
                if (!(extent > 0.0f)) {
                    e[axis] = -126; // degenerate axis: any tiny grid works
                    continue;
                }
                int exp = static_cast<int>(
                    std::ceil(std::log2(extent / maxq)));
                while (std::ldexp(maxq, exp) < extent)
                    ++exp;
                if (exp < -126)
                    exp = -126;
                e[axis] = exp;
            }
            // Retry with coarser grids until containment survives float
            // rounding; a couple of steps is always enough in practice.
            bool ok = false;
            for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
                ok = encodeNode(in, bits, origin, e, out);
                if (!ok)
                    for (int axis = 0; axis < 3; ++axis)
                        ++e[axis];
            }
            SMS_ASSERT(ok, "quantized node encoding failed to converge");
        }
        nodes_.push_back(out);
    }
}

} // namespace sms
