/**
 * @file
 * Stackless traversal implementation.
 */

#include "src/bvh/stackless.hpp"

#include <limits>

#include "src/util/check.hpp"

namespace sms {

StacklessLinks
StacklessLinks::build(const WideBvh &bvh)
{
    StacklessLinks links;
    links.parent.assign(bvh.nodes().size(), kNoParent);
    links.slot.assign(bvh.nodes().size(), 0);
    for (uint32_t n = 0; n < bvh.nodes().size(); ++n) {
        const WideNode &node = bvh.nodes()[n];
        for (uint8_t c = 0; c < node.child_count; ++c) {
            if (!node.children[c].isInternal())
                continue;
            uint32_t child = node.children[c].nodeIndex();
            SMS_ASSERT(links.parent[child] == kNoParent,
                       "node %u reachable through two parents", child);
            links.parent[child] = n;
            links.slot[child] = c;
        }
    }
    return links;
}

SlotHits
intersectNodeSlots(const WideNode &node, const Ray &ray)
{
    SlotHits out;
    out.tests = node.child_count;
    for (uint8_t i = 0; i < node.child_count; ++i) {
        const Aabb &b = node.child_bounds[i];
        float t0 = ray.tMin;
        float t1 = ray.tMax;
        for (int axis = 0; axis < 3; ++axis) {
            float inv = ray.invDir[axis];
            float near = (b.lo[axis] - ray.origin[axis]) * inv;
            float far = (b.hi[axis] - ray.origin[axis]) * inv;
            if (near > far) {
                float tmp = near;
                near = far;
                far = tmp;
            }
            // NaN (0 * inf) propagates as "no constraint", exactly as
            // in Aabb::intersect.
            if (near > t0)
                t0 = near;
            if (far < t1)
                t1 = far;
        }
        // t0 only grows and t1 only shrinks, so the final comparison is
        // equivalent to Aabb::intersect's early-out checks.
        out.t[i] = t0;
        if (t0 <= t1)
            out.hit_mask |= static_cast<uint8_t>(1u << i);
    }
    return out;
}

int
nextStacklessSlot(const SlotHits &hits, int resume_slot)
{
    float resume_t = resume_slot >= 0
                         ? hits.t[resume_slot]
                         : -std::numeric_limits<float>::infinity();
    int best = -1;
    float best_t = 0.0f;
    for (int i = 0; i < kWideBvhWidth; ++i) {
        if (!(hits.hit_mask & (1u << i)))
            continue;
        // Strictly after (resume_t, resume_slot) in the lexicographic
        // (t, slot) order that intersectNodeChildren's stable
        // nearest-first sort produces.
        if (resume_slot >= 0 &&
            (hits.t[i] < resume_t ||
             (hits.t[i] == resume_t && i <= resume_slot)))
            continue;
        if (best < 0 || hits.t[i] < best_t) {
            best = i;
            best_t = hits.t[i];
        }
    }
    return best;
}

namespace {

HitRecord
traverseStacklessImpl(const Scene &scene, const WideBvh &bvh,
                      const StacklessLinks &links, const Ray &in_ray,
                      bool any_hit, TraversalCounters *counters)
{
    HitRecord hit;
    if (bvh.empty())
        return hit;

    Ray ray = in_ray;
    TraversalCounters local;
    TraversalCounters &ctr = counters ? *counters : local;

    ChildRef cur = bvh.rootRef();
    uint32_t cur_parent = StacklessLinks::kNoParent;
    uint8_t cur_slot = 0;
    int resume_slot = -1;

    auto backtrack = [&](uint8_t from_slot) {
        uint32_t p = cur_parent;
        resume_slot = from_slot;
        cur = ChildRef::makeInternal(p);
        cur_parent = links.parent[p];
        cur_slot = links.slot[p];
    };

    for (;;) {
        if (cur.isLeaf()) {
            ++ctr.leaf_visits;
            uint32_t tested = 0;
            bool found = intersectLeaf(scene, bvh, cur, ray, hit, any_hit,
                                       tested);
            ctr.prim_tests += tested;
            if (found && any_hit)
                return hit;
            if (cur_parent == StacklessLinks::kNoParent)
                break; // the root itself is a leaf
            backtrack(cur_slot);
            continue;
        }
        SMS_ASSERT(cur.isInternal(),
                   "invalid child reference during stackless traversal");
        ++ctr.nodes_visited;
        const WideNode &node = bvh.nodes()[cur.nodeIndex()];
        SlotHits hits = intersectNodeSlots(node, ray);
        ctr.box_tests += static_cast<uint64_t>(hits.tests);
        int s = nextStacklessSlot(hits, resume_slot);
        if (s >= 0) {
            cur_parent = cur.nodeIndex();
            cur_slot = static_cast<uint8_t>(s);
            cur = node.children[s];
            resume_slot = -1;
            continue;
        }
        if (cur_parent == StacklessLinks::kNoParent)
            break; // subtree of the root exhausted
        backtrack(cur_slot);
    }
    return hit;
}

} // namespace

HitRecord
traverseClosestStackless(const Scene &scene, const WideBvh &bvh,
                         const StacklessLinks &links, const Ray &ray,
                         TraversalCounters *counters)
{
    return traverseStacklessImpl(scene, bvh, links, ray, false, counters);
}

bool
traverseAnyHitStackless(const Scene &scene, const WideBvh &bvh,
                        const StacklessLinks &links, const Ray &ray,
                        TraversalCounters *counters)
{
    return traverseStacklessImpl(scene, bvh, links, ray, true, counters)
        .valid();
}

} // namespace sms
