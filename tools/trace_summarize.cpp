/**
 * @file
 * trace_summarize — fold a timeline trace (Chrome Trace Format JSON,
 * as written by SMS_TIMELINE, schema sms-timeline-1) into per-category
 * totals, with optional assertions for CI.
 *
 * Usage:
 *   trace_summarize <trace.json> [--json] [--by-name] [--require CAT]...
 *                   [--min-categories N]
 *
 * Output (default): one table row per category — duration-event count
 * and summed time (in trace ticks: simulated cycles on sim tracks,
 * wall-clock microseconds on harness tracks), instant-event count,
 * counter-sample count and peak value.
 *
 * --json           emit the summary as one JSON object instead
 * --by-name        additionally break totals down per (category, event
 *                  name) — e.g. sim/fetch vs sim/intersect vs sim/stack
 * --require CAT    fail unless category CAT has at least one event;
 *                  CAT must be a known category name (sweep, sim,
 *                  stack, stackops, cache, dram, shmem)
 * --min-categories N  fail unless >= N categories have nonzero summed
 *                     span time
 *
 * When the recorder's ring buffer overwrote events (events_dropped > 0
 * in the trace header), the summary says so: document totals are then
 * lower bounds, not exact counts.
 *
 * Exit codes: 0 = OK, 1 = an assertion failed, 2 = usage/parse error
 * (including an unknown --require category name).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/stats/report.hpp"
#include "src/stats/timeline.hpp"

using namespace sms;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--json] [--by-name] "
                 "[--require CAT]... [--min-categories N]\n",
                 argv0);
}

/** Is @p name a single known timeline category? */
bool
isKnownCategory(const std::string &name)
{
    std::string error;
    uint32_t mask = 0;
    if (name.empty() || name == "all" || name == "default")
        return false;
    if (!timelineParseCategories(name, mask, error))
        return false;
    return mask != 0 && (mask & (mask - 1)) == 0; // exactly one bit
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool as_json = false;
    bool by_name = false;
    long min_categories = -1;
    std::vector<std::string> required;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            as_json = true;
        } else if (std::strcmp(arg, "--by-name") == 0) {
            by_name = true;
        } else if (std::strcmp(arg, "--require") == 0 && i + 1 < argc) {
            required.push_back(argv[++i]);
        } else if (std::strcmp(arg, "--min-categories") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            min_categories = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || min_categories < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strncmp(arg, "--", 2) == 0 || path) {
            usage(argv[0]);
            return 2;
        } else {
            path = arg;
        }
    }
    if (!path) {
        usage(argv[0]);
        return 2;
    }
    // Typo'd --require names would otherwise "pass" CI by requiring a
    // category that can never exist; reject them up front.
    for (const std::string &cat : required) {
        if (!isKnownCategory(cat)) {
            std::fprintf(stderr,
                         "trace_summarize: unknown category \"%s\" "
                         "(known: %s)\n",
                         cat.c_str(),
                         timelineCategoryList(kTimelineAllCategories)
                             .c_str());
            return 2;
        }
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_summarize: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    JsonValue doc;
    if (!JsonValue::parse(buffer.str(), doc, error)) {
        std::fprintf(stderr, "trace_summarize: %s: %s\n", path,
                     error.c_str());
        return 2;
    }

    TraceSummary summary;
    if (!summarizeTrace(doc, summary, error)) {
        std::fprintf(stderr, "trace_summarize: %s: %s\n", path,
                     error.c_str());
        return 2;
    }

    if (as_json) {
        JsonValue record = JsonValue::object();
        record["schema"] = "sms-trace-summary-1";
        record["trace"] = path;
        const JsonValue *other = doc.find("otherData");
        if (other)
            record["trace_schema"] = other->stringOr("schema", "?");
        record["events_recorded"] = summary.events_recorded;
        record["events_dropped"] = summary.events_dropped;
        record["doc_events"] = summary.doc_events;
        record["complete"] = summary.events_dropped == 0;
        JsonValue cats = JsonValue::array();
        for (const TraceCategorySummary &s : summary.categories) {
            JsonValue row = JsonValue::object();
            row["category"] = s.category;
            row["span_events"] = s.span_events;
            row["span_time"] = s.span_time;
            row["instant_events"] = s.instant_events;
            row["counter_events"] = s.counter_events;
            row["counter_max"] = s.counter_max;
            cats.push(std::move(row));
        }
        record["categories"] = std::move(cats);
        if (by_name) {
            JsonValue names = JsonValue::array();
            for (const TraceNameSummary &n : summary.names) {
                JsonValue row = JsonValue::object();
                row["category"] = n.category;
                row["name"] = n.name;
                row["span_events"] = n.span_events;
                row["span_time"] = n.span_time;
                row["instant_events"] = n.instant_events;
                row["counter_events"] = n.counter_events;
                names.push(std::move(row));
            }
            record["names"] = std::move(names);
        }
        std::printf("%s\n", record.dump(2).c_str());
    } else {
        std::printf("%-10s %12s %14s %10s %10s %12s\n", "category",
                    "spans", "span_time", "instants", "counters",
                    "counter_max");
        for (const TraceCategorySummary &s : summary.categories) {
            std::printf("%-10s %12llu %14llu %10llu %10llu %12llu\n",
                        s.category.c_str(),
                        static_cast<unsigned long long>(s.span_events),
                        static_cast<unsigned long long>(s.span_time),
                        static_cast<unsigned long long>(s.instant_events),
                        static_cast<unsigned long long>(s.counter_events),
                        static_cast<unsigned long long>(s.counter_max));
        }
        if (by_name) {
            std::printf("\n%-10s %-16s %12s %14s %10s %10s\n", "category",
                        "name", "spans", "span_time", "instants",
                        "counters");
            for (const TraceNameSummary &n : summary.names) {
                std::printf("%-10s %-16s %12llu %14llu %10llu %10llu\n",
                            n.category.c_str(), n.name.c_str(),
                            static_cast<unsigned long long>(n.span_events),
                            static_cast<unsigned long long>(n.span_time),
                            static_cast<unsigned long long>(
                                n.instant_events),
                            static_cast<unsigned long long>(
                                n.counter_events));
            }
        }
        if (summary.events_dropped > 0) {
            std::printf("note: ring buffer dropped %llu of %llu recorded "
                        "events; the totals above are lower bounds\n",
                        static_cast<unsigned long long>(
                            summary.events_dropped),
                        static_cast<unsigned long long>(
                            summary.events_recorded));
        }
    }

    bool ok = true;
    for (const std::string &cat : required) {
        bool present = false;
        for (const TraceCategorySummary &s : summary.categories) {
            if (s.category == cat &&
                (s.span_events || s.instant_events || s.counter_events)) {
                present = true;
                break;
            }
        }
        if (!present) {
            std::fprintf(stderr,
                         "FAIL: required category \"%s\" has no events\n",
                         cat.c_str());
            ok = false;
        }
    }
    if (min_categories >= 0) {
        long with_time = 0;
        for (const TraceCategorySummary &s : summary.categories)
            if (s.span_time > 0)
                ++with_time;
        if (with_time < min_categories) {
            std::fprintf(stderr,
                         "FAIL: %ld categories with nonzero span time "
                         "(need >= %ld)\n",
                         with_time, min_categories);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
