/**
 * @file
 * trace_summarize — fold a timeline trace (Chrome Trace Format JSON,
 * as written by SMS_TIMELINE, schema sms-timeline-1) into per-category
 * totals, with optional assertions for CI.
 *
 * Usage:
 *   trace_summarize <trace.json> [--json] [--require CAT]...
 *                   [--min-categories N]
 *
 * Output (default): one table row per category — duration-event count
 * and summed time (in trace ticks: simulated cycles on sim tracks,
 * wall-clock microseconds on harness tracks), instant-event count,
 * counter-sample count and peak value.
 *
 * --json           emit the summary as one JSON object instead
 * --require CAT    fail unless category CAT has at least one event
 * --min-categories N  fail unless >= N categories have nonzero summed
 *                     span time
 *
 * Exit codes: 0 = OK, 1 = an assertion failed, 2 = usage/parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/stats/report.hpp"
#include "src/stats/timeline.hpp"

using namespace sms;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--json] [--require CAT]... "
                 "[--min-categories N]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool as_json = false;
    long min_categories = -1;
    std::vector<std::string> required;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            as_json = true;
        } else if (std::strcmp(arg, "--require") == 0 && i + 1 < argc) {
            required.push_back(argv[++i]);
        } else if (std::strcmp(arg, "--min-categories") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            min_categories = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || min_categories < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strncmp(arg, "--", 2) == 0 || path) {
            usage(argv[0]);
            return 2;
        } else {
            path = arg;
        }
    }
    if (!path) {
        usage(argv[0]);
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_summarize: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    JsonValue doc;
    if (!JsonValue::parse(buffer.str(), doc, error)) {
        std::fprintf(stderr, "trace_summarize: %s: %s\n", path,
                     error.c_str());
        return 2;
    }

    std::vector<TraceCategorySummary> summaries;
    if (!summarizeTraceDocument(doc, summaries, error)) {
        std::fprintf(stderr, "trace_summarize: %s: %s\n", path,
                     error.c_str());
        return 2;
    }

    if (as_json) {
        JsonValue record = JsonValue::object();
        record["schema"] = "sms-trace-summary-1";
        record["trace"] = path;
        const JsonValue *other = doc.find("otherData");
        if (other) {
            record["trace_schema"] = other->stringOr("schema", "?");
            record["events_recorded"] =
                other->numberOr("events_recorded", 0.0);
            record["events_dropped"] =
                other->numberOr("events_dropped", 0.0);
        }
        JsonValue cats = JsonValue::array();
        for (const TraceCategorySummary &s : summaries) {
            JsonValue row = JsonValue::object();
            row["category"] = s.category;
            row["span_events"] = s.span_events;
            row["span_time"] = s.span_time;
            row["instant_events"] = s.instant_events;
            row["counter_events"] = s.counter_events;
            row["counter_max"] = s.counter_max;
            cats.push(std::move(row));
        }
        record["categories"] = std::move(cats);
        std::printf("%s\n", record.dump(2).c_str());
    } else {
        std::printf("%-10s %12s %14s %10s %10s %12s\n", "category",
                    "spans", "span_time", "instants", "counters",
                    "counter_max");
        for (const TraceCategorySummary &s : summaries) {
            std::printf("%-10s %12llu %14llu %10llu %10llu %12llu\n",
                        s.category.c_str(),
                        static_cast<unsigned long long>(s.span_events),
                        static_cast<unsigned long long>(s.span_time),
                        static_cast<unsigned long long>(s.instant_events),
                        static_cast<unsigned long long>(s.counter_events),
                        static_cast<unsigned long long>(s.counter_max));
        }
    }

    bool ok = true;
    for (const std::string &cat : required) {
        bool present = false;
        for (const TraceCategorySummary &s : summaries) {
            if (s.category == cat &&
                (s.span_events || s.instant_events || s.counter_events)) {
                present = true;
                break;
            }
        }
        if (!present) {
            std::fprintf(stderr,
                         "FAIL: required category \"%s\" has no events\n",
                         cat.c_str());
            ok = false;
        }
    }
    if (min_categories >= 0) {
        long with_time = 0;
        for (const TraceCategorySummary &s : summaries)
            if (s.span_time > 0)
                ++with_time;
        if (with_time < min_categories) {
            std::fprintf(stderr,
                         "FAIL: %ld categories with nonzero span time "
                         "(need >= %ld)\n",
                         with_time, min_categories);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
