/**
 * @file
 * sweep_merge — merge the records of N shard workers (bench runs
 * executed with --shards=i/N, see src/serve/sweep_shard.hpp) into one
 * record equivalent to a single-process run, and append it to an
 * output JSONL file.
 *
 * Usage:
 *   sweep_merge --out <merged.json> [--heartbeats <dir>]
 *               <shard1.json> ... <shardN.json>
 *
 * The LAST record of each input file is merged (the most recent run).
 * The merge validates that every shard 1..N is present exactly once,
 * that every (scene, config) cell is covered exactly once, recomputes
 * the normalized columns and summary geomeans, rebuilds the run-level
 * aggregate (merged depth histogram, merged cycle-accounting tree with
 * the conservation invariant re-checked), and combines the throughput
 * blocks. The bench coordinator (--shard-workers=N) does the same
 * in-process; this tool covers workers launched by hand or by a
 * cluster scheduler.
 *
 * --heartbeats <dir> folds the final sms-heartbeat-1 files of the
 * workers' SMS_HEARTBEAT_DIR into the merged record's throughput block
 * (a "heartbeats" summary: per-shard cells done/owned, wall seconds,
 * and a completeness flag), matching what the in-bench coordinator
 * emits.
 *
 * Exit codes: 0 = merged record appended, 1 = merge rejected
 * (incomplete/overlapping shards, conservation violation), 2 = usage
 * or I/O error.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/serve/heartbeat.hpp"
#include "src/serve/sweep_shard.hpp"
#include "src/stats/report.hpp"

using namespace sms;

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string hb_dir;
    std::vector<const char *> inputs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else if (std::strcmp(argv[i], "--heartbeats") == 0 &&
                   i + 1 < argc) {
            hb_dir = argv[++i];
        } else if (std::strncmp(argv[i], "--heartbeats=", 13) == 0) {
            hb_dir = argv[i] + 13;
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr,
                         "usage: %s --out <merged.json> [--heartbeats "
                         "<dir>] <shard1.json> ... <shardN.json>\n",
                         argv[0]);
            return 2;
        } else {
            inputs.push_back(argv[i]);
        }
    }
    if (out_path.empty() || inputs.empty()) {
        std::fprintf(stderr,
                     "usage: %s --out <merged.json> [--heartbeats "
                     "<dir>] <shard1.json> ... <shardN.json>\n",
                     argv[0]);
        return 2;
    }

    std::vector<JsonValue> records;
    for (const char *path : inputs) {
        std::vector<JsonValue> lines;
        std::string error;
        if (!readJsonLines(path, lines, error)) {
            std::fprintf(stderr, "sweep_merge: %s: %s\n", path,
                         error.c_str());
            return 2;
        }
        if (lines.empty()) {
            std::fprintf(stderr, "sweep_merge: %s: no records\n", path);
            return 2;
        }
        records.push_back(std::move(lines.back()));
    }

    JsonValue merged;
    std::string error;
    if (!mergeShardRecords(records, merged, error)) {
        std::fprintf(stderr, "sweep_merge: merge rejected: %s\n",
                     error.c_str());
        return 1;
    }
    if (!hb_dir.empty()) {
        JsonValue hb = heartbeatSummaryJson(hb_dir);
        if (hb.isNull()) {
            std::fprintf(stderr,
                         "sweep_merge: %s: no readable heartbeats\n",
                         hb_dir.c_str());
            return 2;
        }
        merged["throughput"]["heartbeats"] = std::move(hb);
    }
    if (!appendJsonLine(out_path, merged, error)) {
        std::fprintf(stderr, "sweep_merge: %s: %s\n", out_path.c_str(),
                     error.c_str());
        return 2;
    }
    std::printf("merged %zu shard records into %s\n", records.size(),
                out_path.c_str());
    return 0;
}
