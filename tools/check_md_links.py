#!/usr/bin/env python3
"""Check relative links and anchors in the repo's markdown files.

Usage: check_md_links.py <file-or-dir>...

Validates every inline markdown link `[text](target)`:

* external schemes (http/https/mailto) are skipped — CI must not
  depend on the network;
* a relative path must exist on disk, resolved against the file's
  directory;
* a `#fragment` (bare or after a path to another markdown file) must
  match a heading in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens).

Exits 0 when every link resolves, 1 otherwise (each broken link is
reported as `file:line: message`), 2 on usage errors.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def slugify(heading):
    """GitHub-style anchor slug for a markdown heading."""
    text = heading.strip()
    text = re.sub(r"`([^`]*)`", r"\1", text)          # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    text = text.replace(" ", "-")
    return text


def markdown_lines(path):
    """Lines of a markdown file with fenced code blocks blanked out."""
    lines = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                lines.append("")
                continue
            lines.append("" if in_fence else line.rstrip("\n"))
    return lines


def anchors_of(path, cache):
    if path not in cache:
        slugs = set()
        for line in markdown_lines(path):
            m = HEADING_RE.match(line)
            if m:
                slug = slugify(m.group(1))
                # Duplicate headings get -1, -2, ... suffixes; accept
                # the base slug for all of them.
                slugs.add(slug)
        cache[path] = slugs
    return cache[path]


def check_file(md_path, anchor_cache):
    errors = []
    base = os.path.dirname(md_path) or "."
    for lineno, line in enumerate(markdown_lines(md_path), start=1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if EXTERNAL_RE.match(target):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(resolved):
                    errors.append((md_path, lineno,
                                   f"broken link '{target}': "
                                   f"{resolved} does not exist"))
                    continue
            else:
                resolved = md_path
            if fragment:
                if not resolved.endswith((".md", ".MD")):
                    continue
                if fragment not in anchors_of(resolved, anchor_cache):
                    errors.append((md_path, lineno,
                                   f"broken anchor '{target}': no "
                                   f"heading '#{fragment}' in {resolved}"))
    return errors


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} <file-or-dir>...", file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        elif os.path.isfile(arg):
            files.append(arg)
        else:
            print(f"{argv[0]}: {arg}: no such file or directory",
                  file=sys.stderr)
            return 2

    anchor_cache = {}
    errors = []
    for md in files:
        errors.extend(check_file(md, anchor_cache))
    for path, lineno, message in errors:
        print(f"{path}:{lineno}: {message}", file=sys.stderr)
    print(f"check_md_links: {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
