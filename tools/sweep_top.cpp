/**
 * @file
 * sweep_top — live (or one-shot) monitor over the per-shard heartbeat
 * files a sharded sweep writes under SMS_HEARTBEAT_DIR (see
 * src/serve/heartbeat.hpp). Renders one row per shard: a progress bar
 * over cells done/owned, the simulated-cycle rate from the heartbeat's
 * counter snapshot, the heartbeat age, and a STALLED flag when a shard
 * stopped refreshing its file.
 *
 * Usage:
 *   sweep_top <hb-dir> [--once] [--interval-ms N] [--stall-seconds S]
 *             [--expect-shards N] [--require-complete]
 *             [--check-metrics FILE]...
 *
 * Modes:
 *  - live (default): redraw every --interval-ms (1000) until every
 *    expected shard reports done with all owned cells finished, then
 *    exit 0. Works post-mortem too — nothing deletes heartbeats, so
 *    pointing it at a finished run's directory shows the final state.
 *  - --once: render a single snapshot and exit immediately; with
 *    --require-complete the exit code asserts the run finished. This
 *    is the CI form.
 *
 * --check-metrics FILE (repeatable) additionally validates FILE as an
 * sms-metrics-1 JSONL series (schema tag on every line, single pid,
 * strictly increasing seq, non-decreasing wall clock, monotonic
 * counters) and fails the run on the first violation.
 *
 * Exit codes: 0 = ok (complete when completeness was required),
 * 1 = incomplete/stalled shards or an invalid metrics series,
 * 2 = usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "src/serve/heartbeat.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/report.hpp"

using namespace sms;

namespace {

struct Options
{
    std::string dir;
    bool once = false;
    bool require_complete = false;
    uint32_t interval_ms = 1000;
    double stall_seconds = 5.0;
    uint32_t expect_shards = 0; ///< 0 = whatever the directory holds
    std::vector<std::string> metrics_files;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <hb-dir> [--once] [--interval-ms N]\n"
        "          [--stall-seconds S] [--expect-shards N]\n"
        "          [--require-complete] [--check-metrics FILE]...\n",
        argv0);
    return 2;
}

bool
parseU32(const char *s, uint32_t &out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (!end || *end || v < 1 || v > 3600000)
        return false;
    out = static_cast<uint32_t>(v);
    return true;
}

/** "1.23G", "45.6M", "789k", "12" — compact rate for one table cell. */
std::string
humanRate(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof buf, "%.0fk", v / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
}

/** All expected shards present, done, and fully swept? */
bool
runComplete(const std::vector<HeartbeatView> &views,
            uint32_t expect_shards)
{
    if (views.empty())
        return false;
    uint32_t want = expect_shards;
    if (want == 0)
        want = views[0].info.shard_count;
    std::vector<bool> seen(want, false);
    for (const HeartbeatView &v : views) {
        if (v.info.shard_index < 1 || v.info.shard_index > want)
            return false;
        seen[v.info.shard_index - 1] = true;
        if (!v.info.done || v.info.cells_done < v.info.cells_owned)
            return false;
    }
    for (bool s : seen)
        if (!s)
            return false;
    return true;
}

/** Render one snapshot of the directory; true when the run completed. */
bool
render(const Options &opt, bool clear_screen, bool &io_error)
{
    std::vector<HeartbeatView> views;
    size_t skipped = 0;
    std::string error;
    io_error = false;
    if (!readHeartbeatDir(opt.dir, views, skipped, error)) {
        std::fprintf(stderr, "sweep_top: %s: %s\n", opt.dir.c_str(),
                     error.c_str());
        io_error = true;
        return false;
    }
    if (clear_screen)
        std::printf("\033[H\033[2J");
    if (views.empty()) {
        std::printf("no heartbeats in %s yet (%zu unreadable)\n",
                    opt.dir.c_str(), skipped);
        std::fflush(stdout);
        return false;
    }
    std::printf("%-6s %-8s %-22s %13s %6s %9s %6s  %s\n", "shard",
                "pid", "progress", "cells", "%", "cyc/s", "age",
                "state");
    for (const HeartbeatView &v : views) {
        double p = v.info.progress();
        int fill = static_cast<int>(p * 20.0 + 0.5);
        fill = fill < 0 ? 0 : fill > 20 ? 20 : fill;
        char bar[24];
        std::snprintf(bar, sizeof bar, "[%.*s%.*s]", fill,
                      "####################", 20 - fill,
                      "....................");
        double cycles =
            v.info.counters.numberOr("sim.cycles_retired", 0.0);
        double rate = v.info.wall_seconds > 0.0
                          ? cycles / v.info.wall_seconds
                          : 0.0;
        const char *state =
            v.info.done ? "done"
            : v.age_seconds > opt.stall_seconds ? "STALLED"
                                                : "running";
        std::printf("%2u/%-3u %-8ld %-22s %5llu/%-7llu %5.1f %9s "
                    "%5.1fs  %s\n",
                    v.info.shard_index, v.info.shard_count, v.info.pid,
                    bar,
                    static_cast<unsigned long long>(v.info.cells_done),
                    static_cast<unsigned long long>(v.info.cells_owned),
                    100.0 * p, humanRate(rate).c_str(), v.age_seconds,
                    state);
    }
    if (skipped)
        std::printf("(%zu unreadable heartbeat file%s skipped)\n",
                    skipped, skipped == 1 ? "" : "s");
    std::fflush(stdout);
    return runComplete(views, opt.expect_shards);
}

/** Validate one sms-metrics-1 series file; true when it passes. */
bool
checkMetricsFile(const std::string &path)
{
    std::vector<JsonValue> lines;
    std::string error;
    if (!readJsonLines(path, lines, error)) {
        std::fprintf(stderr, "sweep_top: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    if (lines.empty()) {
        std::fprintf(stderr, "sweep_top: %s: empty metrics series\n",
                     path.c_str());
        return false;
    }
    if (!validateMetricsSeries(lines, error)) {
        std::fprintf(stderr, "sweep_top: %s: invalid series: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    std::printf("metrics %s: %zu samples, series valid\n", path.c_str(),
                lines.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--once") == 0) {
            opt.once = true;
        } else if (std::strcmp(a, "--require-complete") == 0) {
            opt.require_complete = true;
        } else if (std::strncmp(a, "--interval-ms=", 14) == 0) {
            if (!parseU32(a + 14, opt.interval_ms))
                return usage(argv[0]);
        } else if (std::strcmp(a, "--interval-ms") == 0 &&
                   i + 1 < argc) {
            if (!parseU32(argv[++i], opt.interval_ms))
                return usage(argv[0]);
        } else if (std::strncmp(a, "--stall-seconds=", 16) == 0) {
            opt.stall_seconds = std::atof(a + 16);
        } else if (std::strcmp(a, "--stall-seconds") == 0 &&
                   i + 1 < argc) {
            opt.stall_seconds = std::atof(argv[++i]);
        } else if (std::strncmp(a, "--expect-shards=", 16) == 0) {
            if (!parseU32(a + 16, opt.expect_shards))
                return usage(argv[0]);
        } else if (std::strcmp(a, "--expect-shards") == 0 &&
                   i + 1 < argc) {
            if (!parseU32(argv[++i], opt.expect_shards))
                return usage(argv[0]);
        } else if (std::strncmp(a, "--check-metrics=", 16) == 0) {
            opt.metrics_files.push_back(a + 16);
        } else if (std::strcmp(a, "--check-metrics") == 0 &&
                   i + 1 < argc) {
            opt.metrics_files.push_back(argv[++i]);
        } else if (std::strncmp(a, "--", 2) == 0) {
            return usage(argv[0]);
        } else if (opt.dir.empty()) {
            opt.dir = a;
        } else {
            return usage(argv[0]);
        }
    }
    if (opt.dir.empty() && opt.metrics_files.empty())
        return usage(argv[0]);

    bool complete = true;
    if (!opt.dir.empty()) {
        if (opt.once) {
            bool io_error = false;
            complete = render(opt, false, io_error);
            if (io_error)
                return 2;
        } else {
            // Live: redraw until the run completes. The screen is
            // cleared per frame only on a tty; a redirected stream gets
            // appended frames instead of control codes.
            bool tty = ::isatty(1) != 0;
            for (;;) {
                bool io_error = false;
                complete = render(opt, tty, io_error);
                if (io_error)
                    return 2;
                if (complete)
                    break;
                ::usleep(static_cast<useconds_t>(opt.interval_ms) *
                         1000);
            }
        }
    }

    bool metrics_ok = true;
    for (const std::string &path : opt.metrics_files)
        metrics_ok = checkMetricsFile(path) && metrics_ok;

    if (!metrics_ok)
        return 1;
    if (opt.require_complete && !complete)
        return 1;
    return 0;
}
