/**
 * @file
 * cache_gc — size-capped LRU eviction for the on-disk cache
 * directories (workload snapshots .wkld, traversal tapes .tape, result
 * cache entries .res, plus orphaned atomic-write temporaries).
 *
 * Usage:
 *   cache_gc <dir> --max-bytes N [--dry-run] [--verbose]
 *
 * Eligible files are evicted oldest-mtime-first (path as tie-break)
 * until the directory's eligible bytes fit under --max-bytes. Files
 * with other names are never touched. --dry-run prints what would be
 * evicted without deleting anything. --verbose lists every eligible
 * entry (bytes, mtime age, eviction decision), oldest first.
 *
 * Exit codes: 0 = budget met (possibly after evictions), 2 = usage or
 * I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "src/serve/cache_gc.hpp"

using namespace sms;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <dir> --max-bytes N [--dry-run] [--verbose]\n",
        argv0);
}

/** "3d 2h", "5h 7m", "12m", "40s" — coarse age for the listing. */
std::string
humanAge(int64_t seconds)
{
    if (seconds < 0)
        seconds = 0;
    char buf[48];
    if (seconds >= 86400)
        std::snprintf(buf, sizeof buf, "%lldd %lldh",
                      static_cast<long long>(seconds / 86400),
                      static_cast<long long>(seconds % 86400 / 3600));
    else if (seconds >= 3600)
        std::snprintf(buf, sizeof buf, "%lldh %lldm",
                      static_cast<long long>(seconds / 3600),
                      static_cast<long long>(seconds % 3600 / 60));
    else if (seconds >= 60)
        std::snprintf(buf, sizeof buf, "%lldm",
                      static_cast<long long>(seconds / 60));
    else
        std::snprintf(buf, sizeof buf, "%llds",
                      static_cast<long long>(seconds));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    CacheGcOptions options;
    bool have_budget = false;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            options.dry_run = true;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(argv[i], "--max-bytes") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            options.max_bytes = std::strtoull(argv[++i], &end, 10);
            if (!end || *end) {
                usage(argv[0]);
                return 2;
            }
            have_budget = true;
        } else if (std::strncmp(argv[i], "--max-bytes=", 12) == 0) {
            char *end = nullptr;
            options.max_bytes = std::strtoull(argv[i] + 12, &end, 10);
            if (!end || *end) {
                usage(argv[0]);
                return 2;
            }
            have_budget = true;
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            usage(argv[0]);
            return 2;
        } else if (dir.empty()) {
            dir = argv[i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (dir.empty() || !have_budget) {
        usage(argv[0]);
        return 2;
    }

    CacheGcResult result;
    std::string error;
    if (!runCacheGc(dir, options, result, error)) {
        std::fprintf(stderr, "cache_gc: %s\n", error.c_str());
        return 2;
    }
    if (verbose) {
        int64_t now = static_cast<int64_t>(std::time(nullptr));
        for (const CacheGcEntry &e : result.entries)
            std::printf("%-11s %12llu bytes  age %-8s %s\n",
                        e.evicted ? (options.dry_run ? "would-evict"
                                                     : "evict")
                                  : "keep",
                        static_cast<unsigned long long>(e.bytes),
                        humanAge(now - e.mtime).c_str(),
                        e.path.c_str());
    } else {
        for (const std::string &path : result.evicted)
            std::printf("%s %s\n",
                        options.dry_run ? "would evict" : "evicted",
                        path.c_str());
    }
    std::printf("%s: %llu files / %llu bytes eligible, %s %llu files "
                "/ %llu bytes (budget %llu)\n",
                dir.c_str(),
                static_cast<unsigned long long>(result.scanned_files),
                static_cast<unsigned long long>(result.scanned_bytes),
                options.dry_run ? "would evict" : "evicted",
                static_cast<unsigned long long>(result.evicted_files),
                static_cast<unsigned long long>(result.evicted_bytes),
                static_cast<unsigned long long>(options.max_bytes));
    return 0;
}
