#!/usr/bin/env python3
"""Check docs/ENV_VARS.md against the SMS_* reads in the source tree.

Usage: check_env_vars.py <repo-root>

The single source of truth for which environment variables exist is
the code: every `getenv("SMS_...")` call site under src/, bench/ and
tools/. This script extracts that set and compares it with the
variables documented in the docs/ENV_VARS.md table, in both
directions, so the doc can never silently drift again ("all seven
SMS_* variables" once survived two additions):

* a variable read in code but missing from the table fails the check;
* a variable documented but no longer read anywhere fails the check;
* each table row must cite the file that reads the variable, and that
  file must really contain the getenv call.

Exits 0 when doc and code agree, 1 otherwise (each mismatch reported
as `file: message`), 2 on usage errors.
"""

import os
import re
import sys

GETENV_RE = re.compile(r'getenv\(\s*"(SMS_[A-Z0-9_]+)"')
ROW_RE = re.compile(r"^\|\s*`(SMS_[A-Z0-9_]+)`\s*\|")
CITE_RE = re.compile(r"\(`([^`]+)`\)\s*\|\s*$")

SOURCE_DIRS = ("src", "bench", "tools")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")


def code_reads(root):
    """Map of SMS_* variable -> set of repo-relative files reading it."""
    reads = {}
    for subdir in SOURCE_DIRS:
        top = os.path.join(root, subdir)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if not name.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                for var in GETENV_RE.findall(text):
                    rel = os.path.relpath(path, root)
                    reads.setdefault(var, set()).add(rel)
    return reads


def doc_rows(doc_path):
    """List of (lineno, variable, cited-file-or-None) from the table."""
    rows = []
    with open(doc_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = ROW_RE.match(line)
            if not m:
                continue
            cite = CITE_RE.search(line.rstrip())
            rows.append((lineno, m.group(1),
                         cite.group(1) if cite else None))
    return rows


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <repo-root>", file=sys.stderr)
        return 2
    root = argv[1]
    doc_path = os.path.join(root, "docs", "ENV_VARS.md")
    if not os.path.isfile(doc_path):
        print(f"{argv[0]}: {doc_path}: no such file", file=sys.stderr)
        return 2

    reads = code_reads(root)
    rows = doc_rows(doc_path)
    documented = {var for _, var, _ in rows}

    errors = []
    for var in sorted(reads):
        if var not in documented:
            sites = ", ".join(sorted(reads[var]))
            errors.append(f"{doc_path}: `{var}` is read by {sites} "
                          f"but has no table row")
    for lineno, var, cite in rows:
        if var not in reads:
            errors.append(f"{doc_path}:{lineno}: `{var}` is documented "
                          f"but nothing reads it anymore")
            continue
        if cite is None:
            errors.append(f"{doc_path}:{lineno}: `{var}` row does not "
                          f"cite its reading file in a trailing "
                          f"(`path`) note")
        elif cite not in reads[var]:
            sites = ", ".join(sorted(reads[var]))
            errors.append(f"{doc_path}:{lineno}: `{var}` cites "
                          f"`{cite}` but is read by {sites}")

    for message in errors:
        print(message, file=sys.stderr)
    print(f"check_env_vars: {len(reads)} variables in code, "
          f"{len(documented)} documented, {len(errors)} mismatches")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
