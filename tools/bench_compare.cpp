/**
 * @file
 * bench_compare — diff two BENCH_*.json records produced by the bench
 * harnesses (see bench/bench_util.hpp JsonReporter) and fail loudly on
 * IPC or off-chip-traffic deltas beyond epsilon.
 *
 * Usage:
 *   bench_compare <a.json> <b.json> [--ipc-eps X] [--traffic-eps X]
 *                 [--allow-missing]
 *
 * Each file is JSONL: one record per bench run, appended. By default
 * the LAST record of each file is compared (the most recent run); if
 * both files hold the same number of records they are compared
 * pairwise in order.
 *
 * Exit codes: 0 = within tolerance, 1 = violations found,
 * 2 = usage / parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/stats/report.hpp"

using namespace sms;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <a.json> <b.json> [--ipc-eps X] "
                 "[--traffic-eps X] [--allow-missing]\n",
                 argv0);
}

bool
parseEps(const char *arg, double *out)
{
    char *end = nullptr;
    double v = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || v < 0.0)
        return false;
    *out = v;
    return true;
}

void
printIssues(const std::vector<CompareIssue> &issues)
{
    for (const CompareIssue &issue : issues) {
        if (issue.metric.empty()) {
            std::printf("  %s\n", issue.where.c_str());
        } else {
            std::printf("  %s: %s %.6g vs %.6g (rel delta %.4f)\n",
                        issue.where.c_str(), issue.metric.c_str(),
                        issue.a, issue.b, issue.rel);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CompareOptions options;
    std::vector<const char *> paths;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--allow-missing") == 0) {
            options.allow_missing = true;
        } else if (std::strcmp(arg, "--ipc-eps") == 0 && i + 1 < argc) {
            if (!parseEps(argv[++i], &options.ipc_eps)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--traffic-eps") == 0 &&
                   i + 1 < argc) {
            if (!parseEps(argv[++i], &options.traffic_eps)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strncmp(arg, "--", 2) == 0) {
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        usage(argv[0]);
        return 2;
    }

    std::string error;
    std::vector<JsonValue> a, b;
    if (!readJsonLines(paths[0], a, error)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", paths[0],
                     error.c_str());
        return 2;
    }
    if (!readJsonLines(paths[1], b, error)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", paths[1],
                     error.c_str());
        return 2;
    }

    // Pair up records: pairwise when counts match, else last-vs-last.
    std::vector<std::pair<const JsonValue *, const JsonValue *>> pairs;
    if (a.size() == b.size()) {
        for (size_t i = 0; i < a.size(); ++i)
            pairs.push_back({&a[i], &b[i]});
    } else {
        std::printf("record counts differ (%zu vs %zu); comparing the "
                    "last record of each file\n",
                    a.size(), b.size());
        pairs.push_back({&a.back(), &b.back()});
    }

    bool ok = true;
    for (size_t i = 0; i < pairs.size(); ++i) {
        std::vector<CompareIssue> issues;
        if (!compareBenchRecords(*pairs[i].first, *pairs[i].second,
                                 options, issues, error)) {
            std::fprintf(stderr,
                         "bench_compare: record %zu not comparable: %s\n",
                         i, error.c_str());
            return 2;
        }
        std::string fig = pairs[i].first->stringOr("figure", "?");
        std::printf("record %zu (%s): %zu issue%s (ipc_eps=%.3g, "
                    "traffic_eps=%.3g)\n",
                    i, fig.c_str(), issues.size(),
                    issues.size() == 1 ? "" : "s", options.ipc_eps,
                    options.traffic_eps);
        printIssues(issues);
        if (!issues.empty())
            ok = false;
    }

    if (ok) {
        std::printf("OK: all compared metrics within tolerance\n");
        return 0;
    }
    std::printf("FAIL: metric deltas exceed tolerance\n");
    return 1;
}
