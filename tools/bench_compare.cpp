/**
 * @file
 * bench_compare — diff two BENCH_*.json records produced by the bench
 * harnesses (see bench/bench_util.hpp JsonReporter) and fail loudly on
 * IPC or off-chip-traffic deltas beyond epsilon. Traffic is gated both
 * in aggregate (offchip_accesses) and per class: when the
 * counters.{l1,l2}.class_misses splits diverge, every diverging class
 * is reported with its signed delta rather than stopping at the first
 * mismatch.
 *
 * Usage:
 *   bench_compare <a.json> <b.json> [--ipc-eps X] [--traffic-eps X]
 *                 [--allow-missing] [--check-accounting]
 *                 [--accounting-eps X] [--throughput-floor R]
 *   bench_compare --check-throughput <record.json>
 *   bench_compare --require-result-cache-hits <record.json>
 *
 * --require-result-cache-hits gates the warm result-cache path on the
 * most recent record of a single file: every sweep cell must have been
 * served from the result cache (hits == cells > 0, zero misses and
 * failures) and the run must not have simulated anything
 * (throughput.simulate_calls == 0). Used by CI to prove that a warm
 * re-run of a sweep performs zero simulation work.
 *
 * Unmerged shard-worker records (carrying a "shard" block) are only
 * comparable against other worker records of the same shard; comparing
 * one against a full or merged record exits 3 (schema mismatch).
 *
 * Each file is JSONL: one record per bench run, appended. By default
 * the LAST record of each file is compared (the most recent run); if
 * both files hold the same number of records they are compared
 * pairwise in order.
 *
 * --check-throughput validates the most recent record of a single file:
 * the run-level "throughput" block must exist with finite numeric
 * fields (wall-clock magnitudes are machine-dependent and deliberately
 * NOT gated — only presence and finiteness are checked).
 *
 * --throughput-floor R (two-record mode) additionally gates the new
 * record's throughput.sim_cycles_per_sec against the baseline
 * record's: the run fails when new < R * old. Wall-clock throughput is
 * machine-dependent, so R should be lenient enough to absorb runner
 * speed variance — the floor exists to catch structural regressions
 * (the tape replay path silently re-recording, a hot-loop rewrite
 * losing its batching), not few-percent noise.
 *
 * --check-accounting additionally gates each cell's cycle_accounting
 * block: conservation is re-checked at zero epsilon on both records
 * and the per-leaf totals must agree within --accounting-eps.
 *
 * On failure the tool prints a one-line summary naming which blocks
 * (ipc / traffic / accounting / coverage) violated tolerance.
 *
 * Exit codes: 0 = within tolerance, 1 = violations found,
 * 2 = usage / parse error, 3 = records not comparable (schema or
 * figure mismatch).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/stats/report.hpp"

using namespace sms;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <a.json> <b.json> [--ipc-eps X] "
                 "[--traffic-eps X] [--allow-missing] "
                 "[--check-accounting] [--accounting-eps X] "
                 "[--throughput-floor R]\n"
                 "       %s --check-throughput <record.json>\n"
                 "       %s --require-result-cache-hits <record.json>\n",
                 argv0, argv0, argv0);
}

bool
parseEps(const char *arg, double *out)
{
    char *end = nullptr;
    double v = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || v < 0.0)
        return false;
    *out = v;
    return true;
}

void
printIssues(const std::vector<CompareIssue> &issues)
{
    for (const CompareIssue &issue : issues) {
        if (issue.metric.empty()) {
            std::printf("  %s\n", issue.where.c_str());
        } else if (issue.metric.rfind("variant:", 0) == 0) {
            // Variant-axis divergence carries no numbers — the metric
            // string already names both sides ("'sl' vs 'pred'").
            std::printf("  %s: %s\n", issue.where.c_str(),
                        issue.metric.c_str());
        } else if (issue.metric.find("class_misses") !=
                   std::string::npos) {
            // Per-class traffic carries the direction of the shift:
            // one class moving down and another up is a different
            // diagnosis than everything drifting the same way.
            std::printf("  %s: %s %.6g vs %.6g (delta %+.6g, rel "
                        "%.4f)\n",
                        issue.where.c_str(), issue.metric.c_str(),
                        issue.a, issue.b, issue.signed_delta,
                        issue.rel);
        } else {
            std::printf("  %s: %s %.6g vs %.6g (rel delta %.4f)\n",
                        issue.where.c_str(), issue.metric.c_str(),
                        issue.a, issue.b, issue.rel);
        }
    }
}

/** Record block a violated metric belongs to, for the failure summary. */
const char *
blockOfMetric(const std::string &metric)
{
    if (metric.rfind("variant", 0) == 0)
        return "variant";
    if (metric.rfind("accounting", 0) == 0)
        return "accounting";
    if (metric.rfind("missing", 0) == 0)
        return "coverage";
    if (metric == "ipc" || metric == "norm_ipc" ||
        metric == "mean_norm_ipc")
        return "ipc";
    if (metric == "offchip_accesses" || metric == "norm_offchip" ||
        metric == "mean_norm_offchip" ||
        metric.find("class_misses") != std::string::npos)
        return "traffic";
    if (metric.rfind("throughput", 0) == 0)
        return "throughput";
    return "other";
}

/** One line naming the violated blocks: "ipc (3 issues), accounting (1)". */
std::string
blockSummary(const std::vector<CompareIssue> &issues)
{
    const char *order[] = {"variant",    "ipc",      "traffic",
                           "accounting", "throughput", "coverage",
                           "other"};
    size_t counts[7] = {};
    for (const CompareIssue &issue : issues) {
        const char *block = blockOfMetric(issue.metric);
        for (int i = 0; i < 7; ++i)
            if (std::strcmp(order[i], block) == 0)
                ++counts[i];
    }
    std::string out;
    for (int i = 0; i < 7; ++i) {
        if (!counts[i])
            continue;
        if (!out.empty())
            out += ", ";
        out += order[i];
        out += " (";
        out += std::to_string(counts[i]);
        out += ")";
    }
    return out;
}

/**
 * Validate the throughput block of the most recent record in @p path:
 * all fields present and finite. Magnitudes are machine-dependent, so
 * none are compared against thresholds.
 */
int
checkThroughput(const char *path)
{
    std::string error;
    std::vector<JsonValue> records;
    if (!readJsonLines(path, records, error)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                     error.c_str());
        return 2;
    }
    if (records.empty()) {
        std::fprintf(stderr, "bench_compare: %s: no records\n", path);
        return 2;
    }
    const JsonValue &rec = records.back();
    bool ok = true;
    auto requireFinite = [&](const JsonValue &obj, const char *name,
                             const char *field) {
        const JsonValue *v = obj.find(field);
        if (!v) {
            std::printf("  missing %s.%s\n", name, field);
            ok = false;
            return;
        }
        double d = obj.numberOr(field, NAN);
        if (!std::isfinite(d)) {
            std::printf("  %s.%s is not a finite number\n", name, field);
            ok = false;
        }
    };
    const JsonValue *throughput = rec.find("throughput");
    if (!throughput) {
        std::printf("  missing record-level \"throughput\" object\n");
        ok = false;
    } else {
        for (const char *field :
             {"prepare_wall_seconds", "sweep_wall_seconds", "cells",
              "sim_cycles_total", "sim_cycles_per_sec",
              "simulate_calls"})
            requireFinite(*throughput, "throughput", field);
        const JsonValue *cache = throughput->find("workload_cache");
        if (!cache) {
            std::printf("  missing throughput.workload_cache object\n");
            ok = false;
        } else {
            for (const char *field :
                 {"hits", "misses", "stores", "failures"})
                requireFinite(*cache, "throughput.workload_cache", field);
        }
        const JsonValue *rcache = throughput->find("result_cache");
        if (!rcache) {
            std::printf("  missing throughput.result_cache object\n");
            ok = false;
        } else {
            for (const char *field :
                 {"hits", "misses", "stores", "failures"})
                requireFinite(*rcache, "throughput.result_cache", field);
        }
        const JsonValue *tape = throughput->find("traversal_tape");
        if (!tape) {
            std::printf("  missing throughput.traversal_tape object\n");
            ok = false;
        } else {
            if (!tape->find("mode")) {
                std::printf("  missing throughput.traversal_tape.mode\n");
                ok = false;
            }
            for (const char *field :
                 {"jobs_recorded", "jobs_replayed", "bytes",
                  "disk_loads", "disk_stores", "failures"})
                requireFinite(*tape, "throughput.traversal_tape", field);
        }
    }
    std::string fig = rec.stringOr("figure", "?");
    if (ok) {
        std::printf("OK: throughput block of %s (%s) present and "
                    "finite\n",
                    path, fig.c_str());
        return 0;
    }
    std::printf("FAIL: throughput block of %s (%s) incomplete\n", path,
                fig.c_str());
    return 1;
}

/**
 * Gate the warm result-cache path on the most recent record of
 * @p path: hits == cells > 0, zero misses/failures, and zero
 * simulateJobs() calls — the whole sweep was served from the cache.
 */
int
checkResultCacheHits(const char *path)
{
    std::string error;
    std::vector<JsonValue> records;
    if (!readJsonLines(path, records, error)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                     error.c_str());
        return 2;
    }
    if (records.empty()) {
        std::fprintf(stderr, "bench_compare: %s: no records\n", path);
        return 2;
    }
    const JsonValue &rec = records.back();
    const JsonValue *throughput = rec.find("throughput");
    const JsonValue *rcache =
        throughput ? throughput->find("result_cache") : nullptr;
    if (!throughput || !rcache) {
        std::printf("FAIL: %s: record lacks a "
                    "throughput.result_cache block\n",
                    path);
        return 1;
    }
    double cells = throughput->numberOr("cells", NAN);
    double sim_calls = throughput->numberOr("simulate_calls", NAN);
    double hits = rcache->numberOr("hits", NAN);
    double misses = rcache->numberOr("misses", NAN);
    double failures = rcache->numberOr("failures", NAN);
    bool enabled = false;
    if (const JsonValue *e = rcache->find("enabled"))
        enabled = e->isBool() && e->asBool();
    bool ok = enabled && std::isfinite(cells) && cells > 0.0 &&
              hits == cells && misses == 0.0 && failures == 0.0 &&
              sim_calls == 0.0;
    std::printf("%s: %s: result_cache enabled=%d hits=%.0f "
                "misses=%.0f failures=%.0f cells=%.0f "
                "simulate_calls=%.0f\n",
                ok ? "OK" : "FAIL", path, enabled ? 1 : 0, hits,
                misses, failures, cells, sim_calls);
    if (!ok)
        std::printf("  expected: enabled, hits == cells > 0, zero "
                    "misses/failures, zero simulate_calls\n");
    return ok ? 0 : 1;
}

/**
 * Gate @p b's sim-cycle throughput at @p floor_ratio times @p a's.
 * Appends one issue when the floor is violated (or when either record
 * lacks the field, which would otherwise make the gate pass vacuously).
 * Returns a one-line human summary for the caller to print under the
 * record header.
 */
std::string
checkThroughputFloor(const JsonValue &a, const JsonValue &b,
                     double floor_ratio,
                     std::vector<CompareIssue> &issues)
{
    auto cyclesPerSec = [](const JsonValue &rec) {
        const JsonValue *t = rec.find("throughput");
        return t ? t->numberOr("sim_cycles_per_sec", NAN) : NAN;
    };
    double base = cyclesPerSec(a);
    double cur = cyclesPerSec(b);
    if (!std::isfinite(base) || !std::isfinite(cur) || base <= 0.0) {
        CompareIssue issue;
        issue.where = "throughput.sim_cycles_per_sec absent or not a "
                      "positive finite number; cannot apply "
                      "--throughput-floor";
        issues.push_back(issue);
        return "  throughput floor: sim_cycles_per_sec unavailable\n";
    }
    double floor = floor_ratio * base;
    char line[160];
    std::snprintf(line, sizeof line,
                  "  throughput floor: %.4g vs baseline %.4g "
                  "(%.3gx, floor %.2fx = %.4g): %s\n",
                  cur, base, cur / base, floor_ratio, floor,
                  cur >= floor ? "ok" : "VIOLATED");
    if (cur < floor) {
        CompareIssue issue;
        issue.where = "throughput";
        issue.metric = "throughput_floor";
        issue.a = floor;
        issue.b = cur;
        issue.rel = (cur - base) / base;
        issues.push_back(issue);
    }
    return line;
}

} // namespace

int
main(int argc, char **argv)
{
    CompareOptions options;
    std::vector<const char *> paths;
    bool check_throughput = false;
    bool require_cache_hits = false;
    double throughput_floor = 0.0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--check-throughput") == 0) {
            check_throughput = true;
        } else if (std::strcmp(arg, "--require-result-cache-hits") ==
                   0) {
            require_cache_hits = true;
        } else if (std::strcmp(arg, "--throughput-floor") == 0 &&
                   i + 1 < argc) {
            if (!parseEps(argv[++i], &throughput_floor) ||
                throughput_floor <= 0.0) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--allow-missing") == 0) {
            options.allow_missing = true;
        } else if (std::strcmp(arg, "--check-accounting") == 0) {
            options.check_accounting = true;
        } else if (std::strcmp(arg, "--accounting-eps") == 0 &&
                   i + 1 < argc) {
            if (!parseEps(argv[++i], &options.accounting_eps)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--ipc-eps") == 0 && i + 1 < argc) {
            if (!parseEps(argv[++i], &options.ipc_eps)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--traffic-eps") == 0 &&
                   i + 1 < argc) {
            if (!parseEps(argv[++i], &options.traffic_eps)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strncmp(arg, "--", 2) == 0) {
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (check_throughput || require_cache_hits) {
        // The floor needs a baseline record; it is a two-record option.
        if (paths.size() != 1 || throughput_floor > 0.0 ||
            (check_throughput && require_cache_hits)) {
            usage(argv[0]);
            return 2;
        }
        return check_throughput ? checkThroughput(paths[0])
                                : checkResultCacheHits(paths[0]);
    }
    if (paths.size() != 2) {
        usage(argv[0]);
        return 2;
    }

    std::string error;
    std::vector<JsonValue> a, b;
    if (!readJsonLines(paths[0], a, error)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", paths[0],
                     error.c_str());
        return 2;
    }
    if (!readJsonLines(paths[1], b, error)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", paths[1],
                     error.c_str());
        return 2;
    }

    // Pair up records: pairwise when counts match, else last-vs-last.
    std::vector<std::pair<const JsonValue *, const JsonValue *>> pairs;
    if (a.size() == b.size()) {
        for (size_t i = 0; i < a.size(); ++i)
            pairs.push_back({&a[i], &b[i]});
    } else {
        std::printf("record counts differ (%zu vs %zu); comparing the "
                    "last record of each file\n",
                    a.size(), b.size());
        pairs.push_back({&a.back(), &b.back()});
    }

    bool ok = true;
    std::vector<CompareIssue> all_issues;
    for (size_t i = 0; i < pairs.size(); ++i) {
        std::vector<CompareIssue> issues;
        CompareStatus status = compareBenchRecords(
            *pairs[i].first, *pairs[i].second, options, issues, error);
        if (status != CompareStatus::Ok) {
            std::fprintf(stderr,
                         "bench_compare: record %zu not comparable: %s\n",
                         i, error.c_str());
            return status == CompareStatus::SchemaMismatch ? 3 : 2;
        }
        std::string floor_line;
        if (throughput_floor > 0.0)
            floor_line = checkThroughputFloor(
                *pairs[i].first, *pairs[i].second, throughput_floor,
                issues);
        std::string fig = pairs[i].first->stringOr("figure", "?");
        std::printf("record %zu (%s): %zu issue%s (ipc_eps=%.3g, "
                    "traffic_eps=%.3g%s)\n",
                    i, fig.c_str(), issues.size(),
                    issues.size() == 1 ? "" : "s", options.ipc_eps,
                    options.traffic_eps,
                    options.check_accounting ? ", accounting checked"
                                             : "");
        std::fputs(floor_line.c_str(), stdout);
        printIssues(issues);
        if (!issues.empty())
            ok = false;
        all_issues.insert(all_issues.end(), issues.begin(), issues.end());
    }

    if (ok) {
        std::printf("OK: all compared metrics within tolerance\n");
        return 0;
    }
    std::printf("FAIL: tolerance exceeded in: %s\n",
                blockSummary(all_issues).c_str());
    return 1;
}
