/**
 * @file
 * stall_report — "where do the cycles go": fold the cycle_accounting
 * blocks of a BENCH_*.json record (JSONL, schema sms-bench-1) into a
 * per-scene / per-config normalized stall breakdown.
 *
 * Usage:
 *   stall_report <record.json>... [--csv] [--check-conservation]
 *
 * For each file the most recent (last) record is used. Every sweep
 * cell that carries counters.cycle_accounting becomes one table row:
 * the cell's warp-active cycles and each leaf's share of them, in
 * percent. Rows without the block (older records) are skipped with a
 * note.
 *
 * --csv   emit long-format CSV instead (one line per cell and leaf:
 *         file,figure,scene,config,config_index,l1_override,
 *         warp_active_cycles,slot_cycles,leaf,cycles,fraction) for
 *         plotting / pandas.
 *
 * --check-conservation   verify, at zero epsilon, on every cell:
 *         the non-idle leaves sum to warp_active_cycles, each per-SM
 *         tree is conserved the same way, each per-SM tree's full sum
 *         equals its slot budget, and the per-SM trees sum to the
 *         aggregate tree. Exit 1 on any violation.
 *
 * Exit codes: 0 = OK, 1 = conservation violation, 2 = usage / parse
 * error (including records with no accounting blocks at all).
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/stats/cycle_accounting.hpp"
#include "src/stats/report.hpp"

using namespace sms;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <record.json>... [--csv] "
                 "[--check-conservation]\n",
                 argv0);
}

/** One sweep cell's accounting, flattened for reporting. */
struct CellAccounting
{
    std::string file;
    std::string figure;
    std::string scene;
    std::string config;
    int config_index = -1;
    long long l1_override = 0;
    uint64_t leaves[kCycleLeafCount] = {};
    uint64_t warp_active_cycles = 0;
    uint64_t slot_cycles = 0;
    const JsonValue *block = nullptr; ///< for the per-SM checks
};

/** True when array elements look like sweep cells. */
bool
isCellArray(const JsonValue &v)
{
    return v.isArray() && v.size() > 0 && v.at(0).isObject() &&
           v.at(0).find("scene") && v.at(0).find("config");
}

/** Read one cycle_accounting JSON tree into leaf totals. */
bool
readAccount(const JsonValue &acct, uint64_t leaves[kCycleLeafCount],
            uint64_t &warp_active, uint64_t &slots)
{
    const JsonValue *leaf_obj = acct.find("leaves");
    if (!leaf_obj || !leaf_obj->isObject())
        return false;
    for (int i = 0; i < kCycleLeafCount; ++i)
        leaves[i] = 0;
    for (const auto &[name, count] : leaf_obj->members()) {
        int idx = cycleLeafFromName(name);
        if (idx >= 0 && count.isNumber())
            leaves[idx] = count.asU64();
    }
    warp_active =
        static_cast<uint64_t>(acct.numberOr("warp_active_cycles", 0.0));
    slots = static_cast<uint64_t>(acct.numberOr("slot_cycles", 0.0));
    return true;
}

uint64_t
activeSumOf(const uint64_t leaves[kCycleLeafCount])
{
    uint64_t sum = 0;
    for (int i = 0; i < kCycleLeafCount; ++i)
        if (!cycleLeafIsIdle(static_cast<CycleLeaf>(i)))
            sum += leaves[i];
    return sum;
}

uint64_t
totalSumOf(const uint64_t leaves[kCycleLeafCount])
{
    uint64_t sum = 0;
    for (int i = 0; i < kCycleLeafCount; ++i)
        sum += leaves[i];
    return sum;
}

/** Collect the accounting cells of one record. */
void
collectCells(const std::string &file, const JsonValue &record,
             std::vector<CellAccounting> &out, size_t &skipped)
{
    std::string figure = record.stringOr("figure", "?");
    for (const auto &member : record.members()) {
        if (!isCellArray(member.second))
            continue;
        for (const JsonValue &cell : member.second.elements()) {
            const JsonValue *counters = cell.find("counters");
            const JsonValue *acct =
                counters ? counters->find("cycle_accounting") : nullptr;
            if (!acct) {
                ++skipped;
                continue;
            }
            CellAccounting row;
            row.file = file;
            row.figure = figure;
            row.scene = cell.stringOr("scene", "?");
            row.config = cell.stringOr("config", "?");
            row.config_index =
                static_cast<int>(cell.numberOr("config_index", -1));
            row.l1_override =
                static_cast<long long>(cell.numberOr("l1_override", 0));
            row.block = acct;
            if (readAccount(*acct, row.leaves, row.warp_active_cycles,
                            row.slot_cycles))
                out.push_back(row);
            else
                ++skipped;
        }
    }
}

/**
 * Zero-epsilon conservation checks of one cell's block. Appends
 * human-readable violations to @p violations.
 */
void
checkCell(const CellAccounting &cell,
          std::vector<std::string> &violations)
{
    auto where = [&](const char *what) {
        return cell.scene + "/" + cell.config + ": " + what;
    };
    uint64_t active = activeSumOf(cell.leaves);
    if (active != cell.warp_active_cycles)
        violations.push_back(
            where("leaves sum to ") + std::to_string(active) + " but " +
            std::to_string(cell.warp_active_cycles) +
            " warp-active cycles were simulated");
    if (cell.slot_cycles > 0 &&
        totalSumOf(cell.leaves) != cell.slot_cycles)
        violations.push_back(
            where("full sum ") + std::to_string(totalSumOf(cell.leaves)) +
            " misses the slot budget " + std::to_string(cell.slot_cycles));

    const JsonValue *per_sm = cell.block->find("per_sm");
    if (!per_sm || !per_sm->isArray())
        return;
    uint64_t sm_sum[kCycleLeafCount] = {};
    uint64_t sm_active_total = 0;
    for (size_t s = 0; s < per_sm->size(); ++s) {
        uint64_t leaves[kCycleLeafCount];
        uint64_t warp_active = 0, slots = 0;
        if (!readAccount(per_sm->at(s), leaves, warp_active, slots))
            continue;
        uint64_t sm_active = activeSumOf(leaves);
        if (sm_active != warp_active)
            violations.push_back(
                where("SM ") + std::to_string(s) + " leaves sum to " +
                std::to_string(sm_active) + " of " +
                std::to_string(warp_active) + " warp-active cycles");
        if (slots > 0 && totalSumOf(leaves) != slots)
            violations.push_back(
                where("SM ") + std::to_string(s) + " full sum " +
                std::to_string(totalSumOf(leaves)) +
                " misses its slot budget " + std::to_string(slots));
        for (int i = 0; i < kCycleLeafCount; ++i)
            sm_sum[i] += leaves[i];
        sm_active_total += warp_active;
    }
    if (per_sm->size() > 0) {
        for (int i = 0; i < kCycleLeafCount; ++i)
            if (sm_sum[i] != cell.leaves[i])
                violations.push_back(
                    where("per-SM trees disagree with the aggregate on "
                          "leaf ") +
                    cycleLeafName(static_cast<CycleLeaf>(i)));
        if (sm_active_total != cell.warp_active_cycles)
            violations.push_back(
                where("per-SM warp-active cycles sum to ") +
                std::to_string(sm_active_total) + " of " +
                std::to_string(cell.warp_active_cycles));
    }
}

void
printText(const std::vector<CellAccounting> &cells)
{
    // Short column labels, in leaf order.
    static const char *const kShort[kCycleLeafCount] = {
        "issue",  "isect",  "st.spill", "st.refil", "st.borrw",
        "st.flush", "m.l1ms", "m.l2ms", "m.dramq",  "sh.conf",
        "a.btrk", "a.pred", "idle",
    };
    std::string last_header_key;
    for (const CellAccounting &cell : cells) {
        std::string header_key = cell.file + "#" + cell.figure;
        if (header_key != last_header_key) {
            last_header_key = header_key;
            std::printf("\n%s (%s) — %% of warp-active cycles\n",
                        cell.file.c_str(), cell.figure.c_str());
            std::printf("%-8s %-22s %14s", "scene", "config",
                        "active_cycles");
            for (int i = 0; i < kCycleLeafCount; ++i) {
                if (cycleLeafIsIdle(static_cast<CycleLeaf>(i)))
                    continue; // idle is slot-scope, not warp-scope
                std::printf(" %8s", kShort[i]);
            }
            std::printf("\n");
        }
        std::printf("%-8s %-22s %14" PRIu64, cell.scene.c_str(),
                    cell.config.c_str(), cell.warp_active_cycles);
        for (int i = 0; i < kCycleLeafCount; ++i) {
            if (cycleLeafIsIdle(static_cast<CycleLeaf>(i)))
                continue;
            double frac =
                cell.warp_active_cycles
                    ? 100.0 * static_cast<double>(cell.leaves[i]) /
                          static_cast<double>(cell.warp_active_cycles)
                    : 0.0;
            std::printf(" %7.2f%%", frac);
        }
        std::printf("\n");
    }
}

void
printCsv(const std::vector<CellAccounting> &cells)
{
    std::printf("file,figure,scene,config,config_index,l1_override,"
                "warp_active_cycles,slot_cycles,leaf,cycles,fraction\n");
    for (const CellAccounting &cell : cells) {
        for (int i = 0; i < kCycleLeafCount; ++i) {
            double frac =
                cell.warp_active_cycles &&
                        !cycleLeafIsIdle(static_cast<CycleLeaf>(i))
                    ? static_cast<double>(cell.leaves[i]) /
                          static_cast<double>(cell.warp_active_cycles)
                    : 0.0;
            std::printf("%s,%s,%s,%s,%d,%lld,%" PRIu64 ",%" PRIu64
                        ",%s,%" PRIu64 ",%.9g\n",
                        cell.file.c_str(), cell.figure.c_str(),
                        cell.scene.c_str(), cell.config.c_str(),
                        cell.config_index, cell.l1_override,
                        cell.warp_active_cycles, cell.slot_cycles,
                        cycleLeafName(static_cast<CycleLeaf>(i)),
                        cell.leaves[i], frac);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool csv = false;
    bool check = false;
    std::vector<const char *> paths;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--csv") == 0) {
            csv = true;
        } else if (std::strcmp(arg, "--check-conservation") == 0) {
            check = true;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(argv[0]);
        return 2;
    }

    // The records stay alive in `docs` for the cells' block pointers.
    std::vector<JsonValue> docs;
    std::vector<std::pair<std::string, size_t>> last_records;
    for (const char *path : paths) {
        std::string error;
        std::vector<JsonValue> records;
        if (!readJsonLines(path, records, error)) {
            std::fprintf(stderr, "stall_report: %s: %s\n", path,
                         error.c_str());
            return 2;
        }
        if (records.empty()) {
            std::fprintf(stderr, "stall_report: %s: no records\n", path);
            return 2;
        }
        docs.push_back(std::move(records.back()));
        last_records.push_back({path, docs.size() - 1});
    }

    std::vector<CellAccounting> cells;
    size_t skipped = 0;
    for (const auto &[path, doc_idx] : last_records)
        collectCells(path, docs[doc_idx], cells, skipped);
    if (cells.empty()) {
        std::fprintf(stderr,
                     "stall_report: no cycle_accounting blocks found "
                     "(%zu cell%s without one) — record predates the "
                     "accounting schema?\n",
                     skipped, skipped == 1 ? "" : "s");
        return 2;
    }

    if (csv)
        printCsv(cells);
    else
        printText(cells);
    if (skipped > 0 && !csv)
        std::printf("\nnote: %zu cell%s without a cycle_accounting "
                    "block skipped\n",
                    skipped, skipped == 1 ? "" : "s");

    if (check) {
        std::vector<std::string> violations;
        for (const CellAccounting &cell : cells)
            checkCell(cell, violations);
        if (!violations.empty()) {
            for (const std::string &v : violations)
                std::fprintf(stderr, "FAIL: %s\n", v.c_str());
            std::fprintf(stderr,
                         "FAIL: %zu conservation violation%s across %zu "
                         "cells\n",
                         violations.size(),
                         violations.size() == 1 ? "" : "s", cells.size());
            return 1;
        }
        std::printf("OK: conservation holds at zero epsilon on %zu "
                    "cell%s (aggregate, per-SM, slot budgets)\n",
                    cells.size(), cells.size() == 1 ? "" : "s");
    }
    return 0;
}
