/**
 * @file
 * Render a scene to a PPM image with the functional path tracer, then
 * verify through the timing simulator that the SMS hardware stack
 * reproduces every ray's result exactly (images are identical across
 * stack configurations by construction — DESIGN.md invariant 2).
 *
 * Usage: render_image [scene-name] [output.ppm] [size]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/scene/registry.hpp"
#include "src/trace/render.hpp"

using namespace sms;

int
main(int argc, char **argv)
{
    SceneId id = argc > 1 ? sceneFromName(argv[1]) : SceneId::WKND;
    std::string out_path =
        argc > 2 ? argv[2]
                 : std::string(sceneName(id)) + ".ppm";
    uint32_t size = argc > 3 ? static_cast<uint32_t>(
                                   std::strtoul(argv[3], nullptr, 10))
                             : 128;

    RenderParams params;
    params.width = size;
    params.height = size;
    params.spp = 2;
    params.max_bounces = 3;

    std::printf("Rendering %s at %ux%u, %u spp, %u bounces...\n",
                sceneName(id), params.width, params.height, params.spp,
                params.max_bounces);
    auto workload = prepareWorkload(id, ScaleProfile::Small, &params);

    if (!workload->render.film.writePpm(out_path)) {
        std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("Wrote %s (%llu rays, image hash %016llx)\n",
                out_path.c_str(),
                static_cast<unsigned long long>(workload->render.rays),
                static_cast<unsigned long long>(
                    workload->render.film.contentHash()));

    // Replay the whole frame through the SMS hardware stack model; the
    // driver asserts the per-ray results match the functional oracle.
    SimResult r = runWorkload(*workload, makeGpuConfig(StackConfig::sms()));
    std::printf("SMS timing replay: %llu cycles, IPC %.2f, %u/%u lanes "
                "verified against the functional oracle\n",
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                static_cast<unsigned>(r.rays - r.mismatches),
                static_cast<unsigned>(r.rays));
    return 0;
}
