/**
 * @file
 * Interactive-style analysis of a scene's traversal-stack behaviour:
 * depth distribution, spill traffic by level, and what each SMS
 * feature contributes — the paper's §III motivation study for one
 * workload at a time.
 *
 * Usage: stack_explorer [scene-name] [rb-entries] [sh-entries]
 */

#include <cstdio>
#include <cstdlib>

#include "src/scene/registry.hpp"
#include "src/stats/table.hpp"
#include "src/trace/render.hpp"

using namespace sms;

int
main(int argc, char **argv)
{
    SceneId id = argc > 1 ? sceneFromName(argv[1]) : SceneId::PARTY;
    uint32_t rb = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
    uint32_t sh = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;

    std::printf("Preparing %s...\n", sceneName(id));
    auto workload = prepareWorkload(id);
    WideBvhStats bvh_stats = workload->bvh.computeStats(workload->scene);
    std::printf("  %u primitives, BVH6 depth %u, %.2f children/node, "
                "%.2f prims/leaf\n\n",
                workload->scene.primitiveCount(), bvh_stats.max_depth,
                bvh_stats.avg_children, bvh_stats.avg_leaf_prims);

    SimResult base =
        runWorkload(*workload, makeGpuConfig(StackConfig::baseline(rb)));

    std::printf("Stack depth profile (recorded at every push/pop):\n");
    const Histogram &h = base.depth_hist;
    std::printf("  accesses %llu, mean %.2f, median %u, max %u\n",
                static_cast<unsigned long long>(h.total()), h.mean(),
                h.median(), h.maxSeen());
    for (uint32_t d = 1; d <= h.maxSeen() && d < 40; ++d) {
        double frac = h.fractionInRange(d, d);
        if (frac < 5e-4)
            continue;
        int bars = static_cast<int>(frac * 150);
        std::printf("  %2u %5.1f%% %s\n", d, frac * 100.0,
                    std::string(static_cast<size_t>(bars), '#').c_str());
    }
    std::printf("  needing <=%u entries: %.1f%%  |  %u-%u: %.1f%%  |  "
                ">%u: %.1f%%\n\n",
                rb, h.fractionInRange(0, rb) * 100.0, rb + 1, rb + sh,
                h.fractionInRange(rb + 1, rb + sh) * 100.0, rb + sh,
                h.fractionInRange(rb + sh + 1, 63) * 100.0);

    const StackConfig configs[] = {
        StackConfig::baseline(rb),
        StackConfig::withSh(rb, sh, false, false),
        StackConfig::withSh(rb, sh, true, false),
        StackConfig::withSh(rb, sh, true, true),
        StackConfig::rbFull(),
    };

    Table table;
    table.setHeader({"config", "norm IPC", "off-chip", "stack DRAM",
                     "sh acc", "conflict cyc", "borrows", "flushes"});
    double base_ipc = 0.0;
    for (const StackConfig &config : configs) {
        SimResult r = runWorkload(*workload, makeGpuConfig(config));
        if (base_ipc == 0.0)
            base_ipc = r.ipc();
        table.addRow(
            {config.name(), Table::num(r.ipc() / base_ipc, 3),
             std::to_string(r.offchip_accesses),
             std::to_string(r.dram.by_class[(int)TrafficClass::Stack]),
             std::to_string(r.shared_mem.accesses),
             std::to_string(r.shared_mem.conflict_cycles),
             std::to_string(r.stack.borrows),
             std::to_string(r.stack.flushes)});
    }
    table.print();
    return 0;
}
