/**
 * @file
 * Grid sweep over stack configurations for one scene, emitting CSV for
 * external plotting — the building block for custom design-space
 * studies beyond the paper's figures.
 *
 * Usage: config_sweep [scene-name] > sweep.csv
 */

#include <cstdio>
#include <vector>

#include "src/scene/registry.hpp"
#include "src/trace/render.hpp"

using namespace sms;

int
main(int argc, char **argv)
{
    SceneId id = argc > 1 ? sceneFromName(argv[1]) : SceneId::FRST;
    std::fprintf(stderr, "Preparing %s...\n", sceneName(id));
    auto workload = prepareWorkload(id);

    std::vector<StackConfig> configs;
    for (uint32_t rb : {2u, 4u, 8u, 16u}) {
        configs.push_back(StackConfig::baseline(rb));
        for (uint32_t sh : {4u, 8u, 16u}) {
            configs.push_back(StackConfig::withSh(rb, sh, false, false));
            configs.push_back(StackConfig::withSh(rb, sh, true, true));
        }
    }
    configs.push_back(StackConfig::rbFull());

    std::printf("scene,config,rb,sh,skew,realloc,cycles,instructions,"
                "ipc,offchip,stack_dram,shared_accesses,conflict_cycles,"
                "borrows,flushes,l1_miss_rate\n");
    for (const StackConfig &config : configs) {
        SimResult r = runWorkload(*workload, makeGpuConfig(config));
        std::printf(
            "%s,%s,%u,%u,%d,%d,%llu,%llu,%.4f,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%.4f\n",
            sceneName(id), config.name().c_str(),
            config.rb_unbounded ? 0 : config.rb_entries,
            config.sh_entries, config.skewed_bank_access ? 1 : 0,
            config.intra_warp_realloc ? 1 : 0,
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.instructions), r.ipc(),
            static_cast<unsigned long long>(r.offchip_accesses),
            static_cast<unsigned long long>(
                r.dram.by_class[(int)TrafficClass::Stack]),
            static_cast<unsigned long long>(r.shared_mem.accesses),
            static_cast<unsigned long long>(
                r.shared_mem.conflict_cycles),
            static_cast<unsigned long long>(r.stack.borrows),
            static_cast<unsigned long long>(r.stack.flushes),
            r.l1.missRate());
        std::fflush(stdout);
    }
    return 0;
}
