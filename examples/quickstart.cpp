/**
 * @file
 * Quickstart: build a scene, render it, and compare the baseline GPU
 * against the SMS architecture.
 *
 * Usage: quickstart [scene-name]
 */

#include <cstdio>
#include <string>

#include "src/scene/registry.hpp"
#include "src/stats/table.hpp"
#include "src/trace/render.hpp"

using namespace sms;

int
main(int argc, char **argv)
{
    SceneId id = argc > 1 ? sceneFromName(argv[1]) : SceneId::BUNNY;

    std::printf("Preparing scene %s...\n", sceneName(id));
    auto workload = prepareWorkload(id);
    WideBvhStats bvh_stats = workload->bvh.computeStats(workload->scene);
    std::printf("  primitives: %u  BVH6 nodes: %u  depth: %u  "
                "footprint: %.2f MB\n",
                workload->scene.primitiveCount(), bvh_stats.node_count,
                bvh_stats.max_depth,
                bvh_stats.footprint_bytes / (1024.0 * 1024.0));
    std::printf("  %ux%u @ %u spp -> %zu warp jobs, %llu rays\n",
                workload->params.width, workload->params.height,
                workload->params.spp, workload->render.jobs.size(),
                static_cast<unsigned long long>(workload->render.rays));

    const StackConfig configs[] = {
        StackConfig::baseline(8),
        StackConfig::withSh(8, 8),
        StackConfig::sms(),
        StackConfig::rbFull(),
    };

    Table table;
    table.setHeader({"config", "cycles", "IPC", "speedup", "off-chip",
                     "bank-conflict cyc"});
    double base_ipc = 0.0;
    for (const StackConfig &stack : configs) {
        SimResult r = runWorkload(*workload, makeGpuConfig(stack));
        if (base_ipc == 0.0)
            base_ipc = r.ipc();
        table.addRow({stack.name(),
                      std::to_string(r.cycles),
                      Table::num(r.ipc(), 3),
                      Table::num(r.ipc() / base_ipc, 3),
                      std::to_string(r.offchip_accesses),
                      std::to_string(r.shared_mem.conflict_cycles)});
    }
    table.print();

    std::printf("\nImage hash: %016llx (identical across all configs by "
                "construction)\n",
                static_cast<unsigned long long>(
                    workload->render.film.contentHash()));
    return 0;
}
