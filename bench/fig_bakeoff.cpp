/**
 * @file
 * Memory-traffic bake-off: quantized BVH6 node layouts crossed with
 * ray-stream reordering and the paper's stack configurations.
 *
 * The paper attacks stack traffic with shared-memory stacks; the other
 * big off-chip consumer of a traversal is node fetch. This harness puts
 * the two side by side: for each scene it sweeps
 *   {RB_8, SMS} x {exact, q8 quantized} x {none, octant+Morton order}
 * and reports off-chip node-fetch bytes, stack-spill bytes, and IPC per
 * cell, so the node-layout frontier and the stack-config frontier can
 * be compared on one grid. The baseline column is RB_8 with the exact
 * layout and no reordering.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/bvh/node_layout.hpp"
#include "src/memory/request.hpp"
#include "src/sim/ray_reorder.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

/** Off-chip bytes of one traffic class (DRAM accesses are lines). */
double
offchipBytes(const SimResult &r, TrafficClass cls)
{
    return static_cast<double>(
               r.dram.by_class[static_cast<int>(cls)]) *
           kLineBytes;
}

void
runBakeoff(JsonReporter &reporter)
{
    std::printf("=== Bake-off: node layout x ray order x stack "
                "config ===\n\n");
    auto workloads = prepareAllScenes();

    const std::vector<StackConfig> stacks{
        StackConfig::baseline(8), // RB_8
        StackConfig::sms(),       // RB_8+SH_8+SK+RA
    };
    const std::vector<NodeLayoutConfig> layouts{
        NodeLayoutConfig::exact(),
        NodeLayoutConfig::quantized(8),
    };
    const std::vector<RayOrderConfig> orders{
        RayOrderConfig::none(),
        RayOrderConfig::octantMorton(),
    };
    std::vector<SweepColumn> columns;
    for (const auto &stack : stacks)
        for (const auto &layout : layouts)
            for (const auto &order : orders)
                columns.push_back(SweepColumn{stack, 0, layout, order});

    SweepResult sweep = runSweep(workloads, columns);

    // A shard worker holds only its slice of the grid; the cross-cell
    // human tables are computed by nobody and the JSON merge instead.
    if (!sweepShardSpec().active()) {
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::printf("scene %s:\n", sceneName(workloads[s]->id));
            Table table;
            table.setHeader({"config", "node KiB", "stack KiB",
                             "prim KiB", "IPC", "norm IPC"});
            for (size_t c = 0; c < columns.size(); ++c) {
                const SimResult &r = sweep.results[s][c];
                table.addRow(
                    {sweep.configLabel(c),
                     Table::num(offchipBytes(r, TrafficClass::Node) /
                                    1024.0,
                                1),
                     Table::num(offchipBytes(r, TrafficClass::Stack) /
                                    1024.0,
                                1),
                     Table::num(
                         offchipBytes(r, TrafficClass::Primitive) /
                             1024.0,
                         1),
                     Table::num(r.ipc(), 3),
                     Table::num(normIpc(sweep, s, c), 3)});
            }
            table.print();
            std::printf("\n");
        }

        // Cross-scene headline: node-fetch bytes saved by the
        // quantized layout, per stack/order pair (geomean of per-scene
        // ratios, quantized over exact).
        std::printf("node-fetch off-chip bytes, quantized vs exact:\n");
        for (size_t c = 0; c < columns.size(); ++c) {
            if (!columns[c].layout.isQuantized())
                continue;
            // The exact twin differs only in the layout axis. Column
            // order is (stack, layout, order), so it sits one layout
            // stride back.
            size_t exact_c = c - orders.size();
            std::vector<double> ratios;
            for (size_t s = 0; s < workloads.size(); ++s) {
                double e = offchipBytes(sweep.results[s][exact_c],
                                        TrafficClass::Node);
                double q = offchipBytes(sweep.results[s][c],
                                        TrafficClass::Node);
                if (e > 0.0 && q > 0.0)
                    ratios.push_back(q / e);
            }
            double mean = ratios.empty() ? 1.0 : geomean(ratios);
            std::printf("  %-18s vs %-12s %.3fx (%+.1f%%)\n",
                        sweep.configLabel(c).c_str(),
                        sweep.configLabel(exact_c).c_str(), mean,
                        (mean - 1.0) * 100.0);
        }
        printPaperNote("the paper's SMS attacks the stack-traffic "
                       "column; quantized nodes attack the node-fetch "
                       "column of the same off-chip budget");
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

/** Microbenchmark: quantized-node build throughput over a real BVH. */
void
BM_QuantizedBvhBuild(benchmark::State &state)
{
    auto workload = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    NodeLayoutConfig layout = NodeLayoutConfig::quantized(8);
    for (auto _ : state) {
        QuantizedBvh qbvh;
        qbvh.build(workload->bvh, layout);
        benchmark::DoNotOptimize(qbvh.nodes().data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(workload->bvh.nodes().size()));
}
BENCHMARK(BM_QuantizedBvhBuild);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("bakeoff", argc, argv);
    runBakeoff(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
