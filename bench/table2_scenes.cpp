/**
 * @file
 * Table II — benchmark scenes: our procedural stand-ins next to the
 * paper's LumiBench originals (triangle counts and BVH footprints), so
 * the scale substitution is explicit and auditable.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runTable2(JsonReporter &reporter)
{
    std::printf("=== Table II: benchmark scenes (ours vs paper) ===\n\n");
    auto workloads = prepareAllScenes();

    Table table;
    table.setHeader({"scene", "tris", "spheres", "BVH6 nodes", "depth",
                     "BVH (MB)", "paper tris", "paper BVH (MB)"});
    for (const auto &w : workloads) {
        WideBvhStats stats = w->bvh.computeStats(w->scene);
        const PaperSceneInfo &paper = paperSceneInfo(w->id);
        table.addRow({sceneName(w->id),
                      std::to_string(w->scene.triangleCount()),
                      std::to_string(w->scene.sphereCount()),
                      std::to_string(stats.node_count),
                      std::to_string(stats.max_depth),
                      Table::num(stats.footprint_bytes / (1024.0 * 1024.0),
                                 2),
                      Table::num(paper.triangles_millions, 3) + "M",
                      Table::num(paper.bvh_mb, 1)});
    }
    table.print();
    printPaperNote("scenes are deterministic procedural stand-ins scaled "
                   "down ~30-100x from LumiBench (DESIGN.md §2); "
                   "relative complexity ordering is preserved");

    if (reporter.enabled()) {
        JsonValue scenes = JsonValue::array();
        for (const auto &w : workloads) {
            WideBvhStats stats = w->bvh.computeStats(w->scene);
            JsonValue row = JsonValue::object();
            row["scene"] = sceneName(w->id);
            row["triangles"] = w->scene.triangleCount();
            row["spheres"] = w->scene.sphereCount();
            row["bvh_nodes"] = stats.node_count;
            row["bvh_max_depth"] = stats.max_depth;
            row["bvh_bytes"] = stats.footprint_bytes;
            scenes.push(row);
        }
        reporter.record()["scenes"] = scenes;
    }
    reporter.finish();
}

void
BM_SceneBuildBunny(benchmark::State &state)
{
    for (auto _ : state) {
        Scene scene = makeScene(SceneId::BUNNY, ScaleProfile::Tiny);
        benchmark::DoNotOptimize(scene.primitiveCount());
    }
}
BENCHMARK(BM_SceneBuildBunny);

void
BM_BvhBuildBunny(benchmark::State &state)
{
    Scene scene = makeScene(SceneId::BUNNY, ScaleProfile::Tiny);
    for (auto _ : state) {
        WideBvh bvh = WideBvh::build(scene);
        benchmark::DoNotOptimize(bvh.nodes().size());
    }
}
BENCHMARK(BM_BvhBuildBunny);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("table2", argc, argv);
    runTable2(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
