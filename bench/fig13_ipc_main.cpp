/**
 * @file
 * Fig. 13 — the paper's headline result: per-scene IPC improvement of
 * the SMS architecture, normalized to the RB_8 baseline.
 *
 * Series: +SH_8 (secondary shared-memory stack), +SK (skewed bank
 * access), +RA (dynamic intra-warp reallocation), and the impractical
 * RB_FULL upper bound. Paper averages: +15.1%, +19.4%, +23.2%, +25.3%.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/core/warp_stack.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig13(JsonReporter &reporter)
{
    std::printf("=== Fig. 13: IPC improvement of SMS (normalized to "
                "RB_8) ===\n\n");
    auto workloads = prepareAllScenes();
    std::vector<StackConfig> configs{
        StackConfig::baseline(8),
        StackConfig::withSh(8, 8, false, false), // +SH_8
        StackConfig::withSh(8, 8, true, false),  // +SK
        StackConfig::withSh(8, 8, true, true),   // +RA (full SMS)
        StackConfig::rbFull(),
    };
    SweepResult sweep = runSweep(workloads, configs);

    // A shard worker holds only its slice of the grid; the cross-cell
    // human tables are computed by nobody and the JSON merge instead.
    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader(
            {"scene", "+SH_8", "+SK", "+RA (SMS)", "RB_FULL"});
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::vector<std::string> row{sceneName(workloads[s]->id)};
            for (size_t c = 1; c < configs.size(); ++c)
                row.push_back(Table::num(normIpc(sweep, s, c), 3));
            table.addRow(row);
        }
        std::vector<std::string> mean_row{"GEOMEAN"};
        for (size_t c = 1; c < configs.size(); ++c)
            mean_row.push_back(Table::num(meanNormIpc(sweep, c), 3));
        table.addRow(mean_row);
        table.print();

        std::printf("\nmean improvement: +SH_8 %+.1f%%, +SK %+.1f%%, "
                    "SMS %+.1f%%, RB_FULL %+.1f%%\n",
                    (meanNormIpc(sweep, 1) - 1.0) * 100.0,
                    (meanNormIpc(sweep, 2) - 1.0) * 100.0,
                    (meanNormIpc(sweep, 3) - 1.0) * 100.0,
                    (meanNormIpc(sweep, 4) - 1.0) * 100.0);
        printPaperNote("+SH_8: +15.1%, +SK: +19.4%, +RA (SMS): "
                       "+23.2%, RB_FULL: +25.3%");
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

/** Microbenchmark: hierarchical stack push/pop throughput. */
void
BM_HierarchicalStackChurn(benchmark::State &state)
{
    StackConfig config = StackConfig::sms();
    for (auto _ : state) {
        WarpStackModel stack(config, 0, 0x100000000ull);
        StackTxnList txns;
        uint64_t sink = 0;
        for (int i = 0; i < 64; ++i)
            stack.push(0, i, txns);
        uint64_t v;
        while (stack.pop(0, v, txns))
            sink += v;
        benchmark::DoNotOptimize(sink);
        benchmark::DoNotOptimize(txns.size());
    }
}
BENCHMARK(BM_HierarchicalStackChurn);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig13", argc, argv);
    runFig13(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
