/**
 * @file
 * Fig. 8 — effectiveness of the shared-memory traversal stack: IPC of
 * RB_8 plus SH stacks of 4/8/16 entries (shared memory carved from the
 * 64 KB unified array) against the RB_FULL upper bound, normalized to
 * RB_8. Paper: +11.0%, +17.4%, +21.2%, +25.3%.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/memory/shared_memory.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig8(JsonReporter &reporter)
{
    std::printf("=== Fig. 8: IPC with different L1D/shared-memory "
                "configurations ===\n\n");
    auto workloads = prepareAllScenes();
    std::vector<StackConfig> configs{
        StackConfig::baseline(8),
        StackConfig::withSh(8, 4),
        StackConfig::withSh(8, 8),
        StackConfig::withSh(8, 16),
        StackConfig::rbFull(),
    };
    SweepResult sweep = runSweep(workloads, configs);

    // Shard workers skip the cross-cell tables; the merge rebuilds
    // the normalized view from all shards.
    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader({"scene", "RB_8+SH_4", "RB_8+SH_8",
                         "RB_8+SH_16", "RB_FULL"});
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::vector<std::string> row{sceneName(workloads[s]->id)};
            for (size_t c = 1; c < configs.size(); ++c)
                row.push_back(Table::num(normIpc(sweep, s, c), 3));
            table.addRow(row);
        }
        std::vector<std::string> mean_row{"GEOMEAN"};
        for (size_t c = 1; c < configs.size(); ++c)
            mean_row.push_back(Table::num(meanNormIpc(sweep, c), 3));
        table.addRow(mean_row);
        table.print();

        std::printf("\nshared-memory carve-out: SH_4 = %llu KB, SH_8 = "
                    "%llu KB, SH_16 = %llu KB (of 64 KB unified)\n",
                    static_cast<unsigned long long>(
                        configs[1].sharedBytesPerSm() / 1024),
                    static_cast<unsigned long long>(
                        configs[2].sharedBytesPerSm() / 1024),
                    static_cast<unsigned long long>(
                        configs[3].sharedBytesPerSm() / 1024));
        printPaperNote("RB_8+SH_4: +11.0%, RB_8+SH_8: +17.4%, "
                       "RB_8+SH_16: +21.2%, RB_FULL: +25.3%");
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

/** Microbenchmark: warp-level bank-conflict computation. */
void
BM_BankConflictPasses(benchmark::State &state)
{
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t i = 0; i < kWarpSize; ++i)
        lanes.push_back({i, i * 64ull, 8});
    for (auto _ : state) {
        benchmark::DoNotOptimize(SharedMemory::conflictPasses(lanes));
    }
}
BENCHMARK(BM_BankConflictPasses);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig8", argc, argv);
    runFig8(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
