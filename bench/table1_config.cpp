/**
 * @file
 * Table I — baseline GPU parameters, printed from the live GpuConfig so
 * the table can never drift from what the simulator actually runs, plus
 * the §VI-C hardware-overhead arithmetic (96 B + 176 B = 272 B per SM).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/core/stack_config.hpp"
#include "src/sim/gpu_config.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runTable1(JsonReporter &reporter)
{
    std::printf("=== Table I: baseline GPU parameters ===\n\n");
    GpuConfig config = GpuConfig::tableI();

    Table table;
    table.setHeader({"component", "parameter", "value"});
    table.addRow({"General", "# SMs", std::to_string(config.num_sms)});
    table.addRow({"", "warp size", std::to_string(kWarpSize)});
    table.addRow({"", "warp scheduler", "GTO"});
    table.addRow({"RT Unit", "# RT units per SM", "1"});
    table.addRow({"", "max # warps per RT unit",
                  std::to_string(config.max_warps_per_rt)});
    table.addRow({"", "RB stack entries per thread",
                  std::to_string(config.stack.rb_entries)});
    table.addRow(
        {"Memory", "L1D/shared memory",
         strprintf("%lluKB unified, fully associative, LRU, %llu cycles",
                   (unsigned long long)(config.unified_bytes / 1024),
                   (unsigned long long)config.mem.l1_latency)});
    table.addRow(
        {"", "L2 unified cache",
         strprintf("%lluKB, %u-way associative, LRU, %llu cycles",
                   (unsigned long long)(config.mem.l2.size_bytes / 1024),
                   config.mem.l2.ways,
                   (unsigned long long)config.mem.l2_latency)});
    table.addRow({"", "DRAM",
                  strprintf("%llu-cycle latency, 1 line / %llu cycles",
                            (unsigned long long)
                                config.mem.dram.access_latency,
                            (unsigned long long)
                                config.mem.dram.service_interval)});
    table.print();

    std::printf("\n(The paper's Table I L2 is 3MB; scenes here are "
                "scaled down ~30-100x, so the L2 is scaled to keep the "
                "working-set:cache ratio comparable — see DESIGN.md.)\n");

    std::printf("\n=== §VI-C: SMS hardware overhead ===\n\n");
    StackConfig sms = StackConfig::sms();
    Table overhead;
    overhead.setHeader({"component", "bits/thread", "bytes per SM"});
    StackConfig sh_only = StackConfig::withSh(8, 8);
    overhead.addRow({"Top+Bottom+Overflow",
                     std::to_string(sh_only.overheadBitsPerThread()),
                     std::to_string(sh_only.overheadBytesPerSm())});
    overhead.addRow(
        {"+ NextTID/Idle/Priority/Flush (RA)",
         std::to_string(sms.overheadBitsPerThread()),
         std::to_string(sms.overheadBytesPerSm())});
    overhead.print();

    uint64_t sh_bytes = sms.sharedBytesPerSm();
    std::printf("\nSH stack storage: %llu KB of shared memory per SM "
                "(leaving %llu KB L1D of the 64 KB unified array)\n",
                (unsigned long long)(sh_bytes / 1024),
                (unsigned long long)((64 * 1024 - sh_bytes) / 1024));
    std::printf("paper reference: Top/Bottom fields 96 B, reallocation "
                "fields 176 B, total 272 B per SM vs 8 KB for 8 more RB "
                "entries\n");

    if (reporter.enabled()) {
        JsonValue params = JsonValue::object();
        params["num_sms"] = config.num_sms;
        params["max_warps_per_rt"] = config.max_warps_per_rt;
        params["unified_bytes"] = config.unified_bytes;
        params["l2_bytes"] = config.mem.l2.size_bytes;
        params["l1_latency"] = config.mem.l1_latency;
        params["l2_latency"] = config.mem.l2_latency;
        params["dram_latency"] = config.mem.dram.access_latency;
        params["dram_service_interval"] =
            config.mem.dram.service_interval;
        reporter.record()["gpu_params"] = params;

        JsonValue oh = JsonValue::object();
        oh["sh_only_bits_per_thread"] = sh_only.overheadBitsPerThread();
        oh["sh_only_bytes_per_sm"] = sh_only.overheadBytesPerSm();
        oh["sms_bits_per_thread"] = sms.overheadBitsPerThread();
        oh["sms_bytes_per_sm"] = sms.overheadBytesPerSm();
        oh["sh_stack_bytes_per_sm"] = sh_bytes;
        reporter.record()["overhead"] = oh;
    }
    reporter.finish();
}

void
BM_OverheadArithmetic(benchmark::State &state)
{
    StackConfig config = StackConfig::sms();
    for (auto _ : state)
        benchmark::DoNotOptimize(config.overheadBytesPerSm());
}
BENCHMARK(BM_OverheadArithmetic);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("table1", argc, argv);
    runTable1(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
