/**
 * @file
 * Architecture bake-off: competing traversal architectures on one grid.
 *
 * The paper's thesis is that the traversal *stack* is the off-chip
 * traffic problem worth hardware (shared-memory stacks, §VI). Two
 * classic alternatives dissolve the stack instead of caching it:
 * stackless traversal (parent links, zero stack state, redundant node
 * re-tests) and speculative ray-path prediction (a hash table mapping
 * similar rays to the leaf that resolved them, verified against the
 * full traversal). This harness runs, per scene:
 *
 *   RB_8        short stack, spills off-chip   (the paper's baseline)
 *   SMS         shared-memory stack            (the paper's design)
 *   RB_8+sl     stackless, parent links        (no stack to cache)
 *   RB_8+pred   predicted, hash-table probes   (stack mostly idle)
 *
 * and reports per-class off-chip bytes (node / primitive / stack /
 * predictor) plus IPC, so the architectures' costs land in different
 * columns of the same budget: SMS removes the stack column, stackless
 * trades it for the node column, prediction trades it for a new
 * predictor column. See docs/ARCHITECTURES.md for the loop-by-loop
 * comparison and EXPERIMENTS.md for a worked reading of this table.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/bvh/stackless.hpp"
#include "src/memory/request.hpp"
#include "src/sim/ray_predictor.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

/** Off-chip bytes of one traffic class (DRAM accesses are lines). */
double
offchipBytes(const SimResult &r, TrafficClass cls)
{
    return static_cast<double>(
               r.dram.by_class[static_cast<int>(cls)]) *
           kLineBytes;
}

void
runArchBakeoff(JsonReporter &reporter)
{
    std::printf("=== Architecture bake-off: short stack vs SMS vs "
                "stackless vs predicted ===\n\n");
    auto workloads = prepareAllScenes();

    // Column order matters: RB_8 first so every norm is against the
    // paper's baseline, and the architecture variants ride the same
    // RB_8 stack config so the *only* moving axis is the architecture.
    std::vector<SweepColumn> columns;
    columns.push_back(SweepColumn{StackConfig::baseline(8)});
    columns.push_back(SweepColumn{StackConfig::sms()});
    SweepColumn stackless{StackConfig::baseline(8)};
    stackless.arch = TraversalArchConfig::stackless();
    columns.push_back(stackless);
    SweepColumn predicted{StackConfig::baseline(8)};
    predicted.arch = TraversalArchConfig::predicted();
    columns.push_back(predicted);

    SweepResult sweep = runSweep(workloads, columns);

    // A shard worker holds only its slice of the grid; the cross-cell
    // human tables are computed by nobody and the JSON merge instead.
    if (!sweepShardSpec().active()) {
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::printf("scene %s:\n", sceneName(workloads[s]->id));
            Table table;
            table.setHeader({"config", "node KiB", "prim KiB",
                             "stack KiB", "pred KiB", "IPC",
                             "norm IPC"});
            for (size_t c = 0; c < columns.size(); ++c) {
                const SimResult &r = sweep.results[s][c];
                table.addRow(
                    {sweep.configLabel(c),
                     Table::num(offchipBytes(r, TrafficClass::Node) /
                                    1024.0,
                                1),
                     Table::num(
                         offchipBytes(r, TrafficClass::Primitive) /
                             1024.0,
                         1),
                     Table::num(offchipBytes(r, TrafficClass::Stack) /
                                    1024.0,
                                1),
                     Table::num(
                         offchipBytes(r, TrafficClass::Predictor) /
                             1024.0,
                         1),
                     Table::num(r.ipc(), 3),
                     Table::num(normIpc(sweep, s, c), 3)});
            }
            table.print();
            std::printf("\n");
        }

        // Cross-scene headline: how each architecture moves the total
        // off-chip budget and the stack column specifically, geomean
        // over scenes against the RB_8 baseline (column 0).
        std::printf("vs RB_8 baseline (geomean over scenes):\n");
        for (size_t c = 1; c < columns.size(); ++c) {
            std::vector<double> traffic_ratios, ipc_ratios;
            for (size_t s = 0; s < workloads.size(); ++s) {
                const SimResult &base = sweep.results[s][0];
                const SimResult &r = sweep.results[s][c];
                if (base.offchip_accesses > 0 && r.offchip_accesses > 0)
                    traffic_ratios.push_back(
                        static_cast<double>(r.offchip_accesses) /
                        static_cast<double>(base.offchip_accesses));
                if (base.ipc() > 0.0 && r.ipc() > 0.0)
                    ipc_ratios.push_back(r.ipc() / base.ipc());
            }
            double traffic = traffic_ratios.empty()
                                 ? 1.0
                                 : geomean(traffic_ratios);
            double ipc = ipc_ratios.empty() ? 1.0 : geomean(ipc_ratios);
            std::printf("  %-12s off-chip %.3fx  IPC %.3fx\n",
                        sweep.configLabel(c).c_str(), traffic, ipc);
        }
        printPaperNote(
            "the paper's §VI keeps the stack and moves it on-chip; the "
            "stackless column deletes the stack but pays node re-fetch, "
            "the predictor column pays table probes — three different "
            "columns of the same off-chip budget");
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

/** Microbenchmark: parent-link build throughput over a real BVH. */
void
BM_StacklessLinksBuild(benchmark::State &state)
{
    auto workload = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    for (auto _ : state) {
        StacklessLinks links = StacklessLinks::build(workload->bvh);
        benchmark::DoNotOptimize(links.parent.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(workload->bvh.nodes().size()));
}
BENCHMARK(BM_StacklessLinksBuild);

/** Microbenchmark: predictor schedule precompute over a workload. */
void
BM_PredictorScheduleBuild(benchmark::State &state)
{
    auto workload = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    TraversalArchConfig arch = TraversalArchConfig::predicted();
    for (auto _ : state) {
        PredictorSchedule schedule = buildPredictorSchedule(
            workload->render.jobs, workload->bvh, arch);
        benchmark::DoNotOptimize(schedule.jobs.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(workload->render.jobs.size()));
}
BENCHMARK(BM_PredictorScheduleBuild);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("arch_bakeoff", argc, argv);
    runArchBakeoff(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
