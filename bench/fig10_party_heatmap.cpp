/**
 * @file
 * Fig. 10 — traversal stack depths across threads for PARTY.
 *
 * Replays two warps of the PARTY scene and dumps, for every stack
 * access, (warp, access index, lane, logical depth) — the data behind
 * the paper's heat map. A coarse ASCII rendering is printed; the full
 * trace is written as CSV to fig10_party_heatmap.csv so it can be
 * plotted externally.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig10(JsonReporter &reporter)
{
    std::printf("=== Fig. 10: per-thread stack depths, PARTY (2 warps) "
                "===\n\n");
    auto workload = prepareWorkload(SceneId::PARTY, profileFromEnv());

    SimOptions options;
    options.depth_trace_warps = {4, 17}; // two representative warps
    GpuConfig config = makeGpuConfig(StackConfig::baseline(8));
    SimResult result = runWorkload(*workload, config, options);

    // CSV dump.
    const char *csv_path = "fig10_party_heatmap.csv";
    std::FILE *csv = std::fopen(csv_path, "w");
    if (csv) {
        std::fprintf(csv, "warp,access_index,lane,depth\n");
        for (const DepthTraceRecord &r : result.depth_trace)
            std::fprintf(csv, "%u,%u,%u,%u\n", r.warp_id, r.access_index,
                         r.lane, r.depth);
        std::fclose(csv);
    }

    // ASCII heat map: x = access index bucket, y = lane, cell = max
    // depth in the bucket rendered as a digit (0-9, '+' for >= 10).
    for (uint32_t warp : options.depth_trace_warps) {
        uint32_t max_access = 0;
        for (const DepthTraceRecord &r : result.depth_trace)
            if (r.warp_id == warp)
                max_access = std::max(max_access, r.access_index);
        if (max_access == 0)
            continue;
        constexpr uint32_t kCols = 96;
        uint32_t bucket = (max_access + kCols) / kCols;

        std::printf("warp %u (%u stack accesses; columns = %u accesses "
                    "each):\n",
                    warp, max_access + 1, bucket);
        std::vector<std::vector<uint32_t>> grid(
            kWarpSize, std::vector<uint32_t>(kCols, 0));
        for (const DepthTraceRecord &r : result.depth_trace) {
            if (r.warp_id != warp)
                continue;
            uint32_t col = std::min(kCols - 1, r.access_index / bucket);
            grid[r.lane][col] = std::max(grid[r.lane][col], r.depth);
        }
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            std::printf("  t%02u ", lane);
            for (uint32_t c = 0; c < kCols; ++c) {
                uint32_t d = grid[lane][c];
                char ch = d == 0 ? '.'
                                 : (d < 10 ? static_cast<char>('0' + d)
                                           : '+');
                std::putchar(ch);
            }
            std::putchar('\n');
        }
        std::putchar('\n');
    }

    std::printf("full trace written to %s\n", csv_path);
    printPaperNote("threads complete traversal at different times and "
                   "require diverging stack depths; late cycles leave "
                   "many SH stacks idle (motivating intra-warp "
                   "reallocation)");

    reporter.addResult("PARTY", config.stack, result);
    if (reporter.enabled()) {
        reporter.record()["trace_csv"] = csv_path;
        reporter.record()["trace_records"] = result.depth_trace.size();
    }
    reporter.finish();
}

void
BM_DepthTraceAppend(benchmark::State &state)
{
    std::vector<DepthTraceRecord> trace;
    uint32_t i = 0;
    for (auto _ : state) {
        trace.push_back({0, i, i % 32, i % 24});
        ++i;
        if (trace.size() > 1u << 20)
            trace.clear();
    }
    benchmark::DoNotOptimize(trace.size());
}
BENCHMARK(BM_DepthTraceAppend);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig10", argc, argv);
    runFig10(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
