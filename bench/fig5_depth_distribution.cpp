/**
 * @file
 * Fig. 5 — average stack-depth distribution across all workloads: the
 * fraction of traversal steps (push/pop operations) at each depth, with
 * the paper's headline buckets (9-16 entries: 17.0% of steps; beyond
 * 16: 1.9%).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/stats/histogram.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig5(JsonReporter &reporter)
{
    std::printf("=== Fig. 5: stack depth distribution (all workloads) "
                "===\n\n");
    auto workloads = prepareAllScenes();
    std::vector<StackConfig> configs{StackConfig::baseline(8)};
    SweepResult sweep = runSweep(workloads, configs);

    // The workload-averaged distribution needs every scene; a shard
    // worker leaves it (and the bucket block) to nobody — the per-cell
    // histograms survive in the record and merge per cell.
    if (!sweepShardSpec().active()) {
        // The paper averages the per-workload distributions (each
        // workload weighted equally, not by access count).
        constexpr uint32_t kMaxDepth = 40;
        std::vector<double> avg_fraction(kMaxDepth + 1, 0.0);
        double frac_1_8 = 0.0, frac_9_16 = 0.0, frac_17p = 0.0;
        for (size_t s = 0; s < workloads.size(); ++s) {
            const Histogram &h = sweep.results[s][0].depth_hist;
            for (uint32_t d = 0; d <= kMaxDepth; ++d)
                avg_fraction[d] += h.fractionInRange(d, d);
            frac_1_8 += h.fractionInRange(0, 8);
            frac_9_16 += h.fractionInRange(9, 16);
            frac_17p += h.fractionInRange(17, 63);
        }
        double n = static_cast<double>(workloads.size());
        for (double &f : avg_fraction)
            f /= n;
        frac_1_8 /= n;
        frac_9_16 /= n;
        frac_17p /= n;

        Table table;
        table.setHeader({"depth", "fraction", "histogram"});
        for (uint32_t d = 0; d <= kMaxDepth; ++d) {
            if (avg_fraction[d] < 1.0e-5)
                continue;
            int bars = static_cast<int>(avg_fraction[d] * 200.0);
            table.addRow({std::to_string(d),
                          Table::num(avg_fraction[d] * 100.0, 2) + "%",
                          std::string(static_cast<size_t>(bars), '#')});
        }
        table.print();

        std::printf("\nbuckets: depth 0-8: %.1f%%  depth 9-16: %.1f%%  "
                    "depth >16: %.1f%%\n",
                    frac_1_8 * 100.0, frac_9_16 * 100.0,
                    frac_17p * 100.0);
        printPaperNote("17.0% of traversal steps require 9-16 entries; "
                       "only 1.9% exceed 16 entries");

        if (reporter.enabled()) {
            JsonValue buckets = JsonValue::object();
            buckets["frac_depth_0_8"] = frac_1_8;
            buckets["frac_depth_9_16"] = frac_9_16;
            buckets["frac_depth_gt_16"] = frac_17p;
            reporter.record()["depth_buckets"] = buckets;
        }
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

void
BM_DepthHistogramMerge(benchmark::State &state)
{
    Histogram a(63), b(63);
    for (uint32_t i = 0; i < 1000; ++i) {
        a.add(i % 30);
        b.add((i * 7) % 30);
    }
    for (auto _ : state) {
        Histogram c = a;
        c.merge(b);
        benchmark::DoNotOptimize(c.total());
    }
}
BENCHMARK(BM_DepthHistogramMerge);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig5", argc, argv);
    runFig5(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
