/**
 * @file
 * Fig. 15 — impact of primary RB stack size with and without SMS.
 *
 * (a) IPC of RB_{2,4,8,16} alone and with the full SMS design
 *     (SH_8+SK+RA), normalized to RB_8 (paper: RB_2 -28.3%; adding SMS
 *     recovers +39.7 pp; SMS with RB_2/RB_4 beats the RB_8 baseline).
 * (b) Off-chip memory access counts for the same grid, normalized to
 *     RB_8 (paper: RB_2 +62.3%; SMS cuts it by 79.2 pp).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig15(JsonReporter &reporter)
{
    auto workloads = prepareAllScenes();
    const uint32_t rb_sizes[] = {2, 4, 8, 16};
    std::vector<StackConfig> configs;
    configs.push_back(StackConfig::baseline(8)); // normalization column
    for (uint32_t rb : rb_sizes) {
        configs.push_back(StackConfig::baseline(rb));
        configs.push_back(StackConfig::sms(rb, 8));
    }
    SweepResult sweep = runSweep(workloads, configs);

    // Shard workers skip the cross-cell tables; the merge rebuilds
    // the normalized view from all shards.
    if (!sweepShardSpec().active()) {
        std::printf("=== Fig. 15a: IPC vs RB stack size, with/without "
                    "SMS (normalized to RB_8) ===\n\n");
        Table ipc_table;
        ipc_table.setHeader({"config", "norm-IPC", "norm-offchip"});
        for (size_t c = 1; c < configs.size(); ++c) {
            ipc_table.addRow({configs[c].name(),
                              Table::num(meanNormIpc(sweep, c), 3),
                              Table::num(meanNormOffchip(sweep, c), 3)});
        }
        ipc_table.print();

        std::printf("\n=== Fig. 15 per-scene normalized IPC ===\n\n");
        Table per_scene;
        std::vector<std::string> h2{"scene"};
        for (size_t c = 1; c < configs.size(); ++c)
            h2.push_back(configs[c].name());
        per_scene.setHeader(h2);
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::vector<std::string> row{sceneName(workloads[s]->id)};
            for (size_t c = 1; c < configs.size(); ++c)
                row.push_back(Table::num(normIpc(sweep, s, c), 3));
            per_scene.addRow(row);
        }
        per_scene.print();

        printPaperNote("RB_2 alone: -28.3% IPC, +62.3% off-chip "
                       "accesses; RB_2+SMS recovers +39.7 pp IPC and "
                       "-79.2 pp off-chip; SMS with RB_2/RB_4 "
                       "outperforms the RB_8 baseline; RB_16+SMS gains "
                       "only ~3.5 pp");
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

void
BM_StackConfigName(benchmark::State &state)
{
    StackConfig config = StackConfig::sms(4, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(config.name());
    }
}
BENCHMARK(BM_StackConfigName);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig15", argc, argv);
    runFig15(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
