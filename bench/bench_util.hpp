/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: workload
 * preparation over the whole scene suite, configuration sweeps,
 * normalized-IPC aggregation matching how the paper reports results
 * (per-scene normalized IPC, then the mean across scenes), and the
 * machine-readable JSON record every harness appends when SMS_JSON or
 * --json is set.
 */

#ifndef SMS_BENCH_BENCH_UTIL_HPP
#define SMS_BENCH_BENCH_UTIL_HPP

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "src/scene/registry.hpp"
#include "src/serve/heartbeat.hpp"
#include "src/serve/result_cache.hpp"
#include "src/serve/sweep_shard.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/report.hpp"
#include "src/stats/table.hpp"
#include "src/stats/timeline.hpp"
#include "src/trace/render.hpp"
#include "src/trace/workload_cache.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace sms {
namespace benchutil {

/**
 * Wall-clock of the most recent prepareAllScenes() call, picked up by
 * JsonReporter::finish() for the throughput record. One value per
 * process is enough: every harness prepares once, then sweeps.
 */
inline double g_last_prepare_seconds = 0.0;

/** Display name of a geometry scale profile. */
inline const char *
profileName(ScaleProfile profile)
{
    switch (profile) {
    case ScaleProfile::Tiny: return "Tiny";
    case ScaleProfile::Small: return "Small";
    case ScaleProfile::Large: return "Large";
    }
    return "?";
}

/**
 * SMS_FULL=1 selects the Large geometry profile; 0/unset the Small one.
 * Anything else is a misconfiguration: warn and fall back to Small
 * rather than silently running the wrong profile.
 */
inline ScaleProfile
profileFromEnv()
{
    const char *full = std::getenv("SMS_FULL");
    if (!full || !*full || std::strcmp(full, "0") == 0)
        return ScaleProfile::Small;
    if (std::strcmp(full, "1") == 0)
        return ScaleProfile::Large;
    warn("SMS_FULL='%s' is not a recognized value (expected 0 or 1); "
         "using the Small profile",
         full);
    return ScaleProfile::Small;
}

/**
 * Scene subset under test: all 16 Table II scenes, or the
 * comma-separated names in SMS_SCENES (e.g. SMS_SCENES=WKND,BUNNY for
 * a CI smoke run). Unknown names are fatal.
 */
inline std::vector<SceneId>
scenesFromEnv()
{
    const auto &all = allScenes();
    const char *filter = std::getenv("SMS_SCENES");
    if (!filter || !*filter)
        return {all.begin(), all.end()};
    std::vector<SceneId> ids;
    std::string spec(filter);
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        if (!name.empty())
            ids.push_back(sceneFromName(name));
        pos = comma + 1;
    }
    if (ids.empty())
        fatal("SMS_SCENES='%s' names no scenes", filter);
    return ids;
}

/** Prepare the scene workloads in parallel (Table II order). */
inline std::vector<std::shared_ptr<Workload>>
prepareAllScenes(ScaleProfile profile = profileFromEnv())
{
    timelineInitFromEnv();
    auto start = std::chrono::steady_clock::now();
    const auto ids = scenesFromEnv();
    std::vector<std::shared_ptr<Workload>> workloads(ids.size());
    const bool tl = timelineOn(TimelineCategory::Sweep);
    uint32_t tl_pid = 0;
    uint64_t tl_start = 0;
    if (tl) {
        tl_pid = timelineNewProcess("prepare (wall-clock us)");
        tl_start = timelineWallMicros();
    }
    parallelFor(ids.size(), [&](size_t i) {
        uint64_t t0 = tl ? timelineWallMicros() : 0;
        workloads[i] = prepareWorkload(ids[i], profile);
        if (tl) {
            uint32_t tid = static_cast<uint32_t>(i) + 1;
            timelineNameThread(tl_pid, tid, sceneName(ids[i]));
            timelineSpanAt(TimelineCategory::Sweep, "prepare_scene",
                           tl_pid, tid, t0, timelineWallMicros() - t0);
        }
    });
    if (tl)
        timelineSpanAt(TimelineCategory::Sweep, "prepare", tl_pid, 0,
                       tl_start, timelineWallMicros() - tl_start,
                       ids.size(), "scenes");
    g_last_prepare_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return workloads;
}

/** How a sweep cell's SimResult came to be. */
enum class CellOrigin : uint8_t
{
    NotOwned = 0, ///< another shard's cell; result left default
    Simulated,    ///< simulated by this run
    CacheHit,     ///< deserialized from the result cache
};

/**
 * One column of a sweep grid: a stack configuration plus the
 * traversal-variant axes (node layout, ray scheduling, traversal
 * architecture) and an optional L1 size override. The plain
 * stack-config sweeps the paper figures run are the special case of
 * all-default variant columns.
 */
struct SweepColumn
{
    StackConfig stack;
    uint64_t l1_override = 0;  ///< 0 = the config's own L1 size
    NodeLayoutConfig layout;   ///< exact by default
    RayOrderConfig order;      ///< no reordering by default
    TraversalArchConfig arch;  ///< stack machine by default

    /** Full GpuConfig of this column (Table I otherwise). */
    GpuConfig
    gpuConfig() const
    {
        GpuConfig config = makeGpuConfig(stack, l1_override);
        config.node_layout = layout;
        config.ray_order = order;
        config.traversal_arch = arch;
        return config;
    }

    /** The column's traversal variant (tape/fingerprint identity). */
    TraversalVariant
    variant() const
    {
        return TraversalVariant{layout, order, arch};
    }

    /** "RB_8", "SMS+q8+mort", ... (bare stack name at defaults). */
    std::string
    displayName() const
    {
        return configDisplayName(gpuConfig());
    }
};

/** Result grid of a (scene x config) sweep. */
struct SweepResult
{
    std::vector<StackConfig> configs;
    std::vector<uint64_t> l1_overrides; ///< parallel to configs; 0 = auto
    /** Full column axes (layout/order), parallel to configs. */
    std::vector<SweepColumn> columns;
    std::vector<std::string> scene_names; ///< parallel to results rows
    /** results[scene][config] */
    std::vector<std::vector<SimResult>> results;
    /** Wall-clock seconds spent simulating each cell (same shape). */
    std::vector<std::vector<double>> cell_wall_seconds;
    /** Provenance of each cell (same shape). */
    std::vector<std::vector<CellOrigin>> cell_origin;
    /** Shard identity the sweep ran under (inactive = whole grid). */
    SweepShardSpec shard;
    /** Wall-clock seconds of the whole sweep (includes scheduling). */
    double wall_seconds = 0.0;

    /** Scene label for diagnostics (index when names are absent). */
    std::string
    sceneLabel(size_t s) const
    {
        return s < scene_names.size() ? scene_names[s]
                                      : "scene#" + std::to_string(s);
    }

    /**
     * Display label of column @p c: the stack name plus the variant
     * tag ("SMS+q8+mort"); reduces to the bare stack name for
     * default-variant columns, keeping existing record keys stable.
     */
    std::string
    configLabel(size_t c) const
    {
        return c < columns.size() ? columns[c].displayName()
                                  : configs[c].name();
    }
};

/**
 * Run every workload under every column of the sweep grid.
 *
 * When the traversal tape is enabled (SMS_TRAVERSAL_TAPE, default on),
 * the sweep runs in two phases per (scene, traversal variant) group —
 * columns sharing a node layout and ray ordering record the same
 * functional traversal, so they share one tape: phase A executes each
 * group's first cell once, recording the traversal into the group's
 * tape (or replays a tape loaded from the workload cache in disk
 * mode); phase B replays every remaining cell of the group from that
 * tape with zero geometry work. Replay is counter-identical to
 * execution, so the result grid does not depend on the tape mode.
 *
 * Two orthogonal reducers run before any cell simulates. When a shard
 * identity is active (sweepShardSpec()), only the owned cells of the
 * flattened grid are touched; the rest stay CellOrigin::NotOwned with
 * default results. When SMS_RESULT_CACHE is set, every owned cell is
 * first probed in the result cache — hits are deserialized instead of
 * simulated (the simulator is deterministic, so the cached counters
 * are the ones simulation would produce), and simulated cells are
 * stored back. The tape phases then cover only the owned cache-miss
 * cells; a fully warm sweep performs zero simulateJobs() calls.
 *
 * @param threads worker threads for the grid (0 = hardware default);
 *                results are per-cell deterministic for any value
 */
inline SweepResult
runSweep(const std::vector<std::shared_ptr<Workload>> &workloads,
         const std::vector<SweepColumn> &columns, unsigned threads = 0)
{
    timelineInitFromEnv();
    metricsInitFromEnv();
    heartbeatInitFromEnv();
    auto start = std::chrono::steady_clock::now();
    const bool tl = timelineOn(TimelineCategory::Sweep);
    uint32_t tl_pid = 0;
    uint64_t tl_start = 0;
    if (tl) {
        tl_pid = timelineNewProcess("sweep (wall-clock us)");
        tl_start = timelineWallMicros();
    }
    SweepResult sweep;
    sweep.shard = sweepShardSpec();
    sweep.columns = columns;
    sweep.configs.reserve(columns.size());
    sweep.l1_overrides.reserve(columns.size());
    for (const auto &col : columns) {
        sweep.configs.push_back(col.stack);
        sweep.l1_overrides.push_back(col.l1_override);
    }
    for (const auto &w : workloads)
        sweep.scene_names.push_back(sceneName(w->id));
    sweep.results.assign(workloads.size(),
                         std::vector<SimResult>(columns.size()));
    sweep.cell_wall_seconds.assign(
        workloads.size(), std::vector<double>(columns.size(), 0.0));
    sweep.cell_origin.assign(workloads.size(),
                             std::vector<CellOrigin>(
                                 columns.size(), CellOrigin::NotOwned));

    const size_t num_configs = columns.size();
    auto owned = [&](size_t s, size_t c) {
        return sweep.shard.owns(
            static_cast<uint64_t>(s) * num_configs + c);
    };

    // Live telemetry: publish how many cells this process owns before
    // any of them runs, so heartbeat progress bars have a denominator
    // from the very first sample.
    if (metricsOn()) {
        uint64_t owned_cells = 0;
        for (size_t s = 0; s < workloads.size(); ++s)
            for (size_t c = 0; c < num_configs; ++c)
                if (owned(s, c))
                    ++owned_cells;
        heartbeatNoteCellsOwned(owned_cells);
    }
    // Per-cell completion instrumentation, shared by the cache-hit and
    // simulated paths. The wall histogram only sees simulated cells
    // (hits complete in microseconds and would drown the signal).
    auto noteCellDone = [](CellOrigin origin, double wall_seconds) {
        if (!metricsOn())
            return;
        static MetricCounter &m_hits =
            metricCounter("sweep.cells_cache_hits");
        static MetricCounter &m_simulated =
            metricCounter("sweep.cells_simulated");
        static MetricHistogram &m_wall = metricHistogram(
            "sweep.cell_wall_ms",
            {1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000});
        if (origin == CellOrigin::CacheHit) {
            m_hits.add();
        } else {
            m_simulated.add();
            m_wall.observe(wall_seconds * 1e3);
        }
        heartbeatNoteCellDone();
    };

    // Result-cache keys: one workload fingerprint per scene, one
    // config digest per column (both sides of each cell's identity).
    // The digest covers the layout/order axes, so variant columns map
    // to distinct cache cells even though the scene fingerprint is
    // shared.
    const std::string result_dir = resultCacheDir();
    std::vector<uint64_t> fingerprints;
    std::vector<uint64_t> digests;
    if (!result_dir.empty()) {
        fingerprints.resize(workloads.size());
        for (size_t s = 0; s < workloads.size(); ++s)
            fingerprints[s] = workloadFingerprint(
                workloads[s]->render.jobs, workloads[s]->bvh);
        digests.resize(columns.size());
        for (size_t c = 0; c < columns.size(); ++c)
            digests[c] = gpuConfigDigest(columns[c].gpuConfig());
    }

    auto runCell = [&](size_t s, size_t c, const SimOptions &options) {
        GpuConfig config = columns[c].gpuConfig();
        uint64_t t0 = tl ? timelineWallMicros() : 0;
        auto cell_start = std::chrono::steady_clock::now();
        sweep.results[s][c] =
            runWorkload(*workloads[s], config, options);
        sweep.cell_wall_seconds[s][c] =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cell_start)
                .count();
        sweep.cell_origin[s][c] = CellOrigin::Simulated;
        if (!result_dir.empty())
            storeCachedResult(result_dir, workloads[s]->id,
                              workloads[s]->profile, fingerprints[s],
                              digests[c], sweep.results[s][c],
                              sweep.cell_wall_seconds[s][c]);
        noteCellDone(CellOrigin::Simulated,
                     sweep.cell_wall_seconds[s][c]);
        if (tl) {
            // One wall-clock row per sweep cell; the cell's simulated
            // cycles ride along so the two clock domains can be tied
            // together when reading the trace.
            uint32_t tid =
                static_cast<uint32_t>(s * columns.size() + c) + 1;
            timelineNameThread(tl_pid, tid,
                               sweep.sceneLabel(s) + " " +
                                   sweep.configLabel(c));
            timelineSpanAt(TimelineCategory::Sweep, "cell", tl_pid, tid,
                           t0, timelineWallMicros() - t0,
                           sweep.results[s][c].cycles, "sim_cycles");
        }
    };

    // Probe the result cache for every owned cell before simulating
    // anything: a hit deserializes the finished counters (identical to
    // what simulation would produce — the simulator is deterministic)
    // and carries the recording run's simulation wall seconds.
    if (!result_dir.empty()) {
        parallelFor(
            workloads.size() * num_configs,
            [&](size_t i) {
                size_t s = i / num_configs;
                size_t c = i % num_configs;
                if (!owned(s, c))
                    return;
                if (loadCachedResult(result_dir, workloads[s]->id,
                                     workloads[s]->profile,
                                     fingerprints[s], digests[c],
                                     sweep.results[s][c],
                                     sweep.cell_wall_seconds[s][c])) {
                    sweep.cell_origin[s][c] = CellOrigin::CacheHit;
                    noteCellDone(CellOrigin::CacheHit, 0.0);
                }
            },
            threads);
    }

    // The cells still to simulate: owned and not served by the cache.
    std::vector<std::vector<size_t>> todo(workloads.size());
    size_t missing = 0;
    for (size_t s = 0; s < workloads.size(); ++s) {
        for (size_t c = 0; c < num_configs; ++c)
            if (owned(s, c) &&
                sweep.cell_origin[s][c] != CellOrigin::CacheHit)
                todo[s].push_back(c);
        missing += todo[s].size();
    }

    // Tape sharing is per (scene, traversal variant): columns with a
    // different node layout or ray ordering record a different
    // functional traversal and cannot replay each other's tape.
    struct TapeGroup
    {
        size_t scene;
        size_t lead;              ///< column that records the tape
        std::vector<size_t> rest; ///< columns replaying the tape
    };
    std::vector<TapeGroup> groups;
    size_t max_group = 0;
    for (size_t s = 0; s < workloads.size(); ++s) {
        size_t first_group = groups.size();
        for (size_t c : todo[s]) {
            uint64_t digest = columns[c].variant().digest();
            TapeGroup *group = nullptr;
            for (size_t g = first_group; g < groups.size(); ++g)
                if (columns[groups[g].lead].variant().digest() ==
                    digest) {
                    group = &groups[g];
                    break;
                }
            if (group)
                group->rest.push_back(c);
            else
                groups.push_back({s, c, {}});
        }
    }
    for (const auto &g : groups)
        max_group = std::max(max_group, g.rest.size() + 1);

    TapeMode tape_mode = traversalTapeMode();
    // Recording costs a little; with single-cell groups (or in disk
    // mode, where a later run amortizes it) a tape only pays off when
    // a group has at least one cell to replay.
    bool use_tape = tape_mode != TapeMode::Off && missing > 0 &&
                    (max_group > 1 || tape_mode == TapeMode::Disk);
    if (!use_tape) {
        std::vector<std::pair<size_t, size_t>> cells;
        cells.reserve(missing);
        for (size_t s = 0; s < workloads.size(); ++s)
            for (size_t c : todo[s])
                cells.emplace_back(s, c);
        parallelFor(
            cells.size(),
            [&](size_t i) {
                runCell(cells[i].first, cells[i].second, {});
            },
            threads);
    } else {
        std::string cache_dir =
            tape_mode == TapeMode::Disk ? workloadCacheDir() : "";
        std::vector<std::shared_ptr<TraversalTape>> tapes(
            groups.size());
        // Phase A: one execution (or disk replay) per (scene, variant)
        // group yields the group's tape and its first missing result
        // column.
        parallelFor(
            groups.size(),
            [&](size_t i) {
                const TapeGroup &g = groups[i];
                TraversalVariant variant = columns[g.lead].variant();
                auto tape = std::make_shared<TraversalTape>();
                bool loaded =
                    !cache_dir.empty() &&
                    loadTraversalTape(cache_dir, *workloads[g.scene],
                                      variant, *tape);
                SimOptions options;
                if (loaded)
                    options.replay_tape = tape.get();
                else
                    options.record_tape = tape.get();
                runCell(g.scene, g.lead, options);
                if (!loaded && !cache_dir.empty())
                    saveTraversalTape(cache_dir, *workloads[g.scene],
                                      variant, *tape);
                tapes[i] = std::move(tape);
            },
            threads);
        // Phase B: every remaining missing cell replays its group's
        // tape.
        std::vector<std::pair<size_t, size_t>> rest; // (group, column)
        rest.reserve(missing - groups.size());
        for (size_t g = 0; g < groups.size(); ++g)
            for (size_t c : groups[g].rest)
                rest.emplace_back(g, c);
        parallelFor(
            rest.size(),
            [&](size_t i) {
                size_t g = rest[i].first;
                SimOptions options;
                options.replay_tape = tapes[g].get();
                runCell(groups[g].scene, rest[i].second, options);
            },
            threads);
    }
    sweep.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (tl)
        timelineSpanAt(TimelineCategory::Sweep, "sweep", tl_pid, 0,
                       tl_start, timelineWallMicros() - tl_start,
                       workloads.size() * columns.size(), "cells");
    return sweep;
}

/**
 * Stack-config sweep: every column uses the default traversal variant
 * (exact node layout, no reordering), matching the paper figures.
 */
inline SweepResult
runSweep(const std::vector<std::shared_ptr<Workload>> &workloads,
         const std::vector<StackConfig> &configs,
         const std::vector<uint64_t> &l1_overrides = {},
         unsigned threads = 0)
{
    std::vector<SweepColumn> columns(configs.size());
    for (size_t c = 0; c < configs.size(); ++c) {
        columns[c].stack = configs[c];
        if (c < l1_overrides.size())
            columns[c].l1_override = l1_overrides[c];
    }
    return runSweep(workloads, columns, threads);
}

/**
 * Normalized IPC of configuration @p c for scene @p s against baseline
 * column @p base.
 *
 * A degenerate cell (zero measured or baseline IPC) is reported as NaN
 * with a warning naming the offending scene/config instead of feeding a
 * non-positive ratio into the downstream geomean (which would abort the
 * whole sweep).
 */
inline double
normIpc(const SweepResult &sweep, size_t s, size_t c, size_t base = 0)
{
    double b = sweep.results[s][base].ipc();
    double v = sweep.results[s][c].ipc();
    if (!(b > 0.0) || !(v > 0.0)) {
        warn("normIpc: degenerate IPC for scene %s (config '%s' ipc=%g, "
             "baseline '%s' ipc=%g); cell reported as NaN",
             sweep.sceneLabel(s).c_str(), sweep.configs[c].name().c_str(),
             v, sweep.configs[base].name().c_str(), b);
        return std::numeric_limits<double>::quiet_NaN();
    }
    return v / b;
}

/**
 * Mean normalized IPC across scenes (geometric, as is standard).
 * Degenerate cells are excluded from the mean (already warned about by
 * normIpc); the sweep keeps running.
 */
inline double
meanNormIpc(const SweepResult &sweep, size_t c, size_t base = 0)
{
    std::vector<double> values;
    values.reserve(sweep.results.size());
    for (size_t s = 0; s < sweep.results.size(); ++s) {
        double v = normIpc(sweep, s, c, base);
        if (std::isfinite(v) && v > 0.0)
            values.push_back(v);
    }
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return geomean(values);
}

/**
 * Normalized off-chip access count of one cell.
 *
 * Both counts zero means "no change" (1.0). A zero baseline with
 * non-zero measured traffic is a regression the old symmetric clamp
 * used to hide as 1.0; it is now reported in the true direction (the
 * measured count against an implied baseline of one access) with a
 * warning flagging the cell. Ratios are floored at 1e-6 so a config
 * that eliminates off-chip traffic entirely cannot zero the geomean.
 */
inline double
normOffchip(const SweepResult &sweep, size_t s, size_t c, size_t base = 0)
{
    double b =
        static_cast<double>(sweep.results[s][base].offchip_accesses);
    double v = static_cast<double>(sweep.results[s][c].offchip_accesses);
    double ratio;
    if (b > 0.0) {
        ratio = v / b;
    } else if (v > 0.0) {
        warn("normOffchip: scene %s config '%s' has %g off-chip accesses "
             "but the baseline '%s' has none; reporting the regression "
             "against an implied baseline of 1",
             sweep.sceneLabel(s).c_str(), sweep.configs[c].name().c_str(),
             v, sweep.configs[base].name().c_str());
        ratio = v;
    } else {
        ratio = 1.0;
    }
    return ratio > 1.0e-6 ? ratio : 1.0e-6;
}

/** Mean normalized off-chip access count across scenes. */
inline double
meanNormOffchip(const SweepResult &sweep, size_t c, size_t base = 0)
{
    std::vector<double> values;
    values.reserve(sweep.results.size());
    for (size_t s = 0; s < sweep.results.size(); ++s)
        values.push_back(normOffchip(sweep, s, c, base));
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return geomean(values);
}

/** "paper vs measured" footer helper. */
inline void
printPaperNote(const std::string &note)
{
    std::printf("\npaper reference: %s\n", note.c_str());
}

/**
 * Machine-readable record emitter for one bench run.
 *
 * Activated by --json[=PATH] on the command line or the SMS_JSON
 * environment variable. A bare --json or a PATH naming a directory
 * resolves to BENCH_<figure>.json (in the directory / the cwd); any
 * other PATH is used verbatim. One schema "sms-bench-1" record is
 * *appended* per run (JSONL), so consecutive runs build a perf
 * trajectory that tools/bench_compare can diff.
 *
 * Sharded execution rides on the same flags: --shards=i/N makes this
 * process shard worker i (equivalent to SMS_SWEEP_SHARDS, see
 * sweep_shard.hpp), and --shard-workers=N turns it into a coordinator
 * that forks N workers of itself, merges their records, and appends
 * the merged record to the --json path (required) without returning.
 */
class JsonReporter
{
  public:
    /** Consumes --json / --shards / --shard-workers from argc/argv. */
    JsonReporter(const std::string &figure, int &argc, char **argv)
        : figure_(figure), start_(std::chrono::steady_clock::now())
    {
        timelineInitFromEnv();
        std::string spec = consumeFlag(argc, argv);
        std::string shards = consumeValueFlag(argc, argv, "--shards=");
        std::string workers =
            consumeValueFlag(argc, argv, "--shard-workers=");
        if (!shards.empty()) {
            SweepShardSpec shard;
            std::string error;
            if (!parseSweepShardSpec(shards, shard, error))
                fatal("--shards=%s: %s", shards.c_str(), error.c_str());
            setSweepShardSpec(shard);
        }
        if (spec.empty()) {
            const char *env = std::getenv("SMS_JSON");
            if (env && *env)
                spec = env;
        }
        if (!workers.empty()) {
            if (!shards.empty())
                fatal("--shard-workers cannot be combined with "
                      "--shards");
            char *end = nullptr;
            unsigned long n = std::strtoul(workers.c_str(), &end, 10);
            if (!end || *end || n < 1 || n > 4096)
                fatal("--shard-workers=%s: want a worker count in "
                      "1..4096",
                      workers.c_str());
            if (spec.empty())
                fatal("--shard-workers requires --json (the merged "
                      "record needs a path)");
            // Forks the workers, merges, appends, exits.
            runShardCoordinator(static_cast<uint32_t>(n),
                                resolvePath(spec), argc, argv);
        }
        // Telemetry starts only here, after the coordinator branch: a
        // coordinator process must not run a sampler or write a
        // heartbeat of its own — it only watches its workers'.
        metricsInitFromEnv();
        heartbeatInitFromEnv();
        shard_ = sweepShardSpec();
        if (shard_.active() && spec.empty())
            warn("shard %u/%u is active without --json/SMS_JSON; the "
                 "partial results have nowhere to go and cannot be "
                 "merged",
                 shard_.index, shard_.count);
        if (spec.empty())
            return;
        path_ = resolvePath(spec);
        record_ = makeRunManifest(figure_,
                                  profileName(profileFromEnv()));
    }

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /** The record under construction (manifest pre-filled). */
    JsonValue &record() { return record_; }

    /**
     * Add a sweep's cells under @p key ("results", "results_l1", ...)
     * plus, for the default key, the per-config summary means.
     *
     * Under an active shard identity only the owned cells are emitted,
     * and the cross-cell derived values (norm_ipc, norm_offchip,
     * baseline, summary) are left null/absent — the other shards'
     * baseline cells are not available here. A "shard" block records
     * the identity, the ordered scene list, and each key's baseline
     * column so mergeShardRecords() can recompute them.
     */
    void
    addSweep(const SweepResult &sweep, size_t base = 0,
             const std::string &key = "results")
    {
        if (!enabled())
            return;
        const bool sharded = sweep.shard.active();
        JsonValue cells = JsonValue::array();
        for (size_t s = 0; s < sweep.results.size(); ++s) {
            for (size_t c = 0; c < sweep.configs.size(); ++c) {
                CellOrigin origin =
                    s < sweep.cell_origin.size() &&
                            c < sweep.cell_origin[s].size()
                        ? sweep.cell_origin[s][c]
                        : CellOrigin::Simulated;
                if (origin == CellOrigin::NotOwned)
                    continue;
                JsonValue cell = JsonValue::object();
                cell["scene"] = sweep.sceneLabel(s);
                cell["config"] = sweep.configLabel(c);
                cell["config_index"] = c;
                cell["l1_override"] = sweep.l1_overrides[c];
                // Variant axes are emitted only when non-default so
                // default-variant records stay byte-identical to the
                // pre-variant golden files.
                if (c < sweep.columns.size() &&
                    !sweep.columns[c].variant().isDefault()) {
                    cell["node_layout"] =
                        sweep.columns[c].layout.name();
                    cell["ray_order"] = sweep.columns[c].order.name();
                    cell["architecture"] =
                        sweep.columns[c].arch.name();
                }
                const SimResult &r = sweep.results[s][c];
                cell["ipc"] = r.ipc();
                if (sharded) {
                    // The merge recomputes these against the full grid.
                    cell["norm_ipc"] = JsonValue();
                    cell["norm_offchip"] = JsonValue();
                } else {
                    cell["norm_ipc"] = normIpc(sweep, s, c, base);
                    cell["norm_offchip"] =
                        normOffchip(sweep, s, c, base);
                }
                cell["stack_config"] = toJson(sweep.configs[c]);
                cell["counters"] = toJson(r);
                // Promote the headline traffic metric for the gate.
                cell["offchip_accesses"] = r.offchip_accesses;
                // Simulator throughput of this cell (never compared by
                // the regression gate — machine-dependent). A
                // result-cache hit reports the recording run's
                // simulation wall seconds.
                double wall = s < sweep.cell_wall_seconds.size() &&
                                      c < sweep.cell_wall_seconds[s].size()
                                  ? sweep.cell_wall_seconds[s][c]
                                  : 0.0;
                cell["wall_seconds"] = wall;
                cell["sim_cycles_per_sec"] =
                    wall > 0.0 ? static_cast<double>(r.cycles) / wall
                               : 0.0;
                cell["origin"] = origin == CellOrigin::CacheHit
                                     ? "result_cache"
                                     : "simulated";
                // When a timeline trace was recorded, name the trace
                // process holding this cell's cycle-domain tracks.
                if (timelineAnyOn())
                    cell["timeline_process"] =
                        sweep.sceneLabel(s) + " " +
                        sweep.configLabel(c) + " (cycles)";
                cells.push(std::move(cell));
                sim_cycles_total_ += r.cycles;
                ++cells_total_;
            }
        }
        sweep_wall_seconds_ += sweep.wall_seconds;
        record_[key] = std::move(cells);
        sweep_added_ = true;

        if (sharded) {
            if (!record_.find("shard")) {
                JsonValue shard = JsonValue::object();
                shard["index"] = sweep.shard.index;
                shard["count"] = sweep.shard.count;
                JsonValue scenes = JsonValue::array();
                for (size_t s = 0; s < sweep.results.size(); ++s)
                    scenes.push(sweep.sceneLabel(s));
                shard["scenes"] = std::move(scenes);
                shard["bases"] = JsonValue::object();
                record_["shard"] = std::move(shard);
            }
            record_["shard"]["bases"][key] = base;
            return;
        }

        if (key == "results") {
            record_["baseline"] = sweep.configLabel(base);
            JsonValue summary = JsonValue::array();
            for (size_t c = 0; c < sweep.configs.size(); ++c) {
                JsonValue row = JsonValue::object();
                row["config"] = sweep.configLabel(c);
                row["config_index"] = c;
                row["l1_override"] = sweep.l1_overrides[c];
                if (c < sweep.columns.size() &&
                    !sweep.columns[c].variant().isDefault()) {
                    row["node_layout"] = sweep.columns[c].layout.name();
                    row["ray_order"] = sweep.columns[c].order.name();
                    row["architecture"] = sweep.columns[c].arch.name();
                }
                row["mean_norm_ipc"] = meanNormIpc(sweep, c, base);
                row["mean_norm_offchip"] =
                    meanNormOffchip(sweep, c, base);
                summary.push(std::move(row));
            }
            record_["summary"] = std::move(summary);
        }
    }

    /** Add a single (scene, config) run as a one-cell results array. */
    void
    addResult(const std::string &scene, const StackConfig &config,
              const SimResult &result)
    {
        if (!enabled())
            return;
        JsonValue cell = JsonValue::object();
        cell["scene"] = scene;
        cell["config"] = config.name();
        cell["config_index"] = 0;
        cell["l1_override"] = 0;
        cell["ipc"] = result.ipc();
        cell["offchip_accesses"] = result.offchip_accesses;
        cell["stack_config"] = toJson(config);
        cell["counters"] = toJson(result);
        record_["results"].push(std::move(cell));
        sim_cycles_total_ += result.cycles;
        ++cells_total_;
    }

    /** Stamp the wall time and append the record to the file. */
    void
    finish()
    {
        if (!enabled() || finished_)
            return;
        finished_ = true;
        // Final telemetry flush first, so the throughput block below
        // reports the heartbeat/sample counts including the last write
        // and watchers see the finished state as soon as possible.
        if (heartbeatActive())
            heartbeatFinish();
        else if (metricsActive())
            metricsFlushNow();
        auto elapsed = std::chrono::steady_clock::now() - start_;
        record_["wall_seconds"] =
            std::chrono::duration<double>(elapsed).count();

        // Simulator throughput of this run, so BENCH_*.json tracks how
        // fast the sweeps themselves execute across PRs. Wall-clock
        // figures are machine-dependent and deliberately ignored by
        // compareBenchRecords.
        JsonValue throughput = JsonValue::object();
        throughput["prepare_wall_seconds"] = g_last_prepare_seconds;
        throughput["sweep_wall_seconds"] = sweep_wall_seconds_;
        throughput["cells"] = cells_total_;
        throughput["sim_cycles_total"] = sim_cycles_total_;
        throughput["sim_cycles_per_sec"] =
            sweep_wall_seconds_ > 0.0
                ? static_cast<double>(sim_cycles_total_) /
                      sweep_wall_seconds_
                : 0.0;
        // Proof obligation of the warm path: a fully result-cached
        // sweep must report simulate_calls == 0.
        throughput["simulate_calls"] = simulateJobsCallCount();
        WorkloadCacheStats cache = workloadCacheStats();
        JsonValue cache_json = JsonValue::object();
        cache_json["enabled"] = !workloadCacheDir().empty();
        cache_json["hits"] = cache.hits;
        cache_json["misses"] = cache.misses;
        cache_json["stores"] = cache.stores;
        cache_json["failures"] = cache.failures;
        throughput["workload_cache"] = std::move(cache_json);
        ResultCacheStats rcache = resultCacheStats();
        JsonValue rcache_json = JsonValue::object();
        rcache_json["enabled"] = !resultCacheDir().empty();
        rcache_json["hits"] = rcache.hits;
        rcache_json["misses"] = rcache.misses;
        rcache_json["stores"] = rcache.stores;
        rcache_json["failures"] = rcache.failures;
        throughput["result_cache"] = std::move(rcache_json);
        TraversalTapeStats tape = traversalTapeStats();
        JsonValue tape_json = JsonValue::object();
        tape_json["mode"] = tapeModeName(traversalTapeMode());
        tape_json["jobs_recorded"] = tape.jobs_recorded;
        tape_json["jobs_replayed"] = tape.jobs_replayed;
        tape_json["bytes"] = tape.bytes;
        tape_json["disk_loads"] = tape.disk_loads;
        tape_json["disk_stores"] = tape.disk_stores;
        tape_json["failures"] = tape.failures;
        throughput["traversal_tape"] = std::move(tape_json);
        TimelineStats tls = timelineStats();
        JsonValue tl_json = JsonValue::object();
        tl_json["enabled"] = tls.enabled;
        tl_json["path"] = tls.path;
        tl_json["categories"] = timelineCategoryList(tls.categories);
        tl_json["events_recorded"] = tls.events_recorded;
        tl_json["events_dropped"] = tls.events_dropped;
        throughput["timeline"] = std::move(tl_json);
        // Live-telemetry summary, present only when telemetry ran so
        // telemetry-off records stay byte-identical to the goldens.
        MetricsStats ms = metricsStats();
        if (ms.enabled) {
            JsonValue m_json = JsonValue::object();
            m_json["enabled"] = true;
            m_json["path"] = ms.path;
            m_json["interval_ms"] = ms.interval_ms;
            m_json["samples"] = ms.samples;
            m_json["heartbeat_dir"] = heartbeatDir();
            m_json["heartbeat_writes"] = heartbeatWriteCount();
            throughput["metrics"] = std::move(m_json);
        }
        record_["throughput"] = std::move(throughput);

        if (shard_.active() && !sweep_added_)
            warn("shard %u/%u ran a bench with no sweep; the record "
                 "has no shard block and mergeShardRecords() will "
                 "reject it",
                 shard_.index, shard_.count);

        std::string error;
        if (!appendJsonLine(path_, record_, error))
            warn("JSON record not written: %s", error.c_str());
        else
            std::printf("\njson record appended to %s\n", path_.c_str());

        // Flush the timeline now rather than from the atexit hook so
        // the path is announced next to the record it belongs to.
        if (tls.enabled && !tls.path.empty()) {
            std::string tl_error;
            if (!timelineExport(tl_error))
                warn("timeline trace not written: %s", tl_error.c_str());
            else
                std::printf("timeline trace written to %s\n",
                            tls.path.c_str());
        }
    }

  private:
    std::string
    consumeFlag(int &argc, char **argv)
    {
        std::string spec;
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0) {
                spec = ".";
            } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
                spec = argv[i] + 7;
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        return spec;
    }

    /** Consume one "--name=VALUE" flag; "" when absent. */
    std::string
    consumeValueFlag(int &argc, char **argv, const char *prefix)
    {
        std::string value;
        size_t len = std::strlen(prefix);
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strncmp(argv[i], prefix, len) == 0)
                value = argv[i] + len;
            else
                argv[out++] = argv[i];
        }
        argc = out;
        return value;
    }

    std::string
    resolvePath(const std::string &spec) const
    {
        std::string default_name = "BENCH_" + figure_ + ".json";
        struct stat st{};
        bool is_dir = !spec.empty() && spec.back() == '/';
        if (!is_dir && ::stat(spec.c_str(), &st) == 0 &&
            S_ISDIR(st.st_mode))
            is_dir = true;
        if (spec == ".")
            return default_name;
        if (is_dir) {
            std::string dir = spec;
            if (dir.back() != '/')
                dir += '/';
            return dir + default_name;
        }
        return spec;
    }

    std::string figure_;
    std::string path_;
    JsonValue record_;
    std::chrono::steady_clock::time_point start_;
    SweepShardSpec shard_;
    bool finished_ = false;
    bool sweep_added_ = false;
    double sweep_wall_seconds_ = 0.0;
    uint64_t sim_cycles_total_ = 0;
    uint64_t cells_total_ = 0;
};

} // namespace benchutil
} // namespace sms

#endif // SMS_BENCH_BENCH_UTIL_HPP
