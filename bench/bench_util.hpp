/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: workload
 * preparation over the whole scene suite, configuration sweeps, and
 * normalized-IPC aggregation matching how the paper reports results
 * (per-scene normalized IPC, then the mean across scenes).
 */

#ifndef SMS_BENCH_BENCH_UTIL_HPP
#define SMS_BENCH_BENCH_UTIL_HPP

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/scene/registry.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/table.hpp"
#include "src/trace/render.hpp"
#include "src/util/parallel.hpp"

namespace sms {
namespace benchutil {

/** SMS_FULL=1 selects the Large geometry profile. */
inline ScaleProfile
profileFromEnv()
{
    const char *full = std::getenv("SMS_FULL");
    if (full && full[0] == '1')
        return ScaleProfile::Large;
    return ScaleProfile::Small;
}

/** Prepare all 16 scene workloads in parallel (Table II order). */
inline std::vector<std::shared_ptr<Workload>>
prepareAllScenes(ScaleProfile profile = profileFromEnv())
{
    const auto &ids = allScenes();
    std::vector<std::shared_ptr<Workload>> workloads(ids.size());
    parallelFor(ids.size(), [&](size_t i) {
        workloads[i] = prepareWorkload(ids[i], profile);
    });
    return workloads;
}

/** Result grid of a (scene x config) sweep. */
struct SweepResult
{
    std::vector<StackConfig> configs;
    std::vector<uint64_t> l1_overrides; ///< parallel to configs; 0 = auto
    /** results[scene][config] */
    std::vector<std::vector<SimResult>> results;
};

/**
 * Run every workload under every configuration, in parallel over the
 * full grid.
 */
inline SweepResult
runSweep(const std::vector<std::shared_ptr<Workload>> &workloads,
         const std::vector<StackConfig> &configs,
         const std::vector<uint64_t> &l1_overrides = {})
{
    SweepResult sweep;
    sweep.configs = configs;
    sweep.l1_overrides = l1_overrides.empty()
                             ? std::vector<uint64_t>(configs.size(), 0)
                             : l1_overrides;
    sweep.results.assign(workloads.size(),
                         std::vector<SimResult>(configs.size()));
    size_t total = workloads.size() * configs.size();
    parallelFor(total, [&](size_t i) {
        size_t s = i / configs.size();
        size_t c = i % configs.size();
        GpuConfig config =
            makeGpuConfig(configs[c], sweep.l1_overrides[c]);
        sweep.results[s][c] = runWorkload(*workloads[s], config);
    });
    return sweep;
}

/**
 * Normalized IPC of configuration @p c for scene @p s against baseline
 * column @p base.
 */
inline double
normIpc(const SweepResult &sweep, size_t s, size_t c, size_t base = 0)
{
    return sweep.results[s][c].ipc() / sweep.results[s][base].ipc();
}

/** Mean normalized IPC across scenes (geometric, as is standard). */
inline double
meanNormIpc(const SweepResult &sweep, size_t c, size_t base = 0)
{
    std::vector<double> values;
    values.reserve(sweep.results.size());
    for (size_t s = 0; s < sweep.results.size(); ++s)
        values.push_back(normIpc(sweep, s, c, base));
    return geomean(values);
}

/** Mean normalized off-chip access count across scenes. */
inline double
meanNormOffchip(const SweepResult &sweep, size_t c, size_t base = 0)
{
    std::vector<double> values;
    values.reserve(sweep.results.size());
    for (size_t s = 0; s < sweep.results.size(); ++s) {
        double b = static_cast<double>(
            sweep.results[s][base].offchip_accesses);
        double v =
            static_cast<double>(sweep.results[s][c].offchip_accesses);
        // Clamp so a config that eliminates off-chip traffic entirely
        // does not zero the geometric mean.
        double ratio = b > 0 ? v / b : 1.0;
        values.push_back(ratio > 1.0e-6 ? ratio : 1.0e-6);
    }
    return geomean(values);
}

/** "paper vs measured" footer helper. */
inline void
printPaperNote(const std::string &note)
{
    std::printf("\npaper reference: %s\n", note.c_str());
}

} // namespace benchutil
} // namespace sms

#endif // SMS_BENCH_BENCH_UTIL_HPP
