/**
 * @file
 * SMS design-choice ablations (beyond the paper's figures):
 *
 *  (a) intra-warp borrow limit sweep — the paper fixes 4 concurrently
 *      borrowed stacks per thread (§VI-B "based on heuristics");
 *  (b) consecutive-flush budget sweep — the paper fixes 3;
 *  (c) energy comparison — SMS vs enlarging the RB stack, quantifying
 *      the §III-C motivation that bigger on-chip stacks cost energy.
 *
 * A subset of deep scenes is used: the knobs only matter once SH
 * stacks actually overflow.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/sim/energy.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

std::vector<std::shared_ptr<Workload>>
deepScenes()
{
    std::vector<std::shared_ptr<Workload>> workloads;
    for (SceneId id : {SceneId::SHIP, SceneId::CHSNT, SceneId::PARK,
                       SceneId::FRST}) {
        workloads.push_back(prepareWorkload(id, profileFromEnv()));
    }
    return workloads;
}

void
runBorrowLimitSweep(const std::vector<std::shared_ptr<Workload>> &ws,
                    JsonReporter &reporter)
{
    std::printf("=== Ablation (a): borrow limit (paper fixes 4) ===\n\n");
    std::vector<StackConfig> configs;
    configs.push_back(StackConfig::baseline(8));
    for (uint32_t limit : {0u, 1u, 2u, 4u, 8u}) {
        StackConfig c = StackConfig::sms();
        c.max_borrowed = limit;
        configs.push_back(c);
    }
    SweepResult sweep = runSweep(ws, configs);

    // Shard workers skip the cross-cell tables; the merge rebuilds
    // the normalized view from all shards.
    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader({"max borrowed", "norm IPC", "global spills",
                         "borrows", "flushes"});
        for (size_t c = 1; c < configs.size(); ++c) {
            uint64_t spills = 0, borrows = 0, flushes = 0;
            for (size_t s = 0; s < ws.size(); ++s) {
                spills += sweep.results[s][c].stack.global_stores;
                borrows += sweep.results[s][c].stack.borrows;
                flushes += sweep.results[s][c].stack.flushes;
            }
            table.addRow({std::to_string(configs[c].max_borrowed),
                          Table::num(meanNormIpc(sweep, c), 3),
                          std::to_string(spills),
                          std::to_string(borrows),
                          std::to_string(flushes)});
        }
        table.print();
        std::printf("\n");
    }
    reporter.addSweep(sweep, 0, "results_borrow");
}

void
runFlushLimitSweep(const std::vector<std::shared_ptr<Workload>> &ws,
                   JsonReporter &reporter)
{
    std::printf("=== Ablation (b): flush budget (paper fixes 3) ===\n\n");
    std::vector<StackConfig> configs;
    configs.push_back(StackConfig::baseline(8));
    for (uint32_t limit : {0u, 1u, 3u, 6u}) {
        StackConfig c = StackConfig::sms();
        c.max_flushes = limit;
        configs.push_back(c);
    }
    SweepResult sweep = runSweep(ws, configs);

    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader({"max flushes", "norm IPC", "flushes", "forced",
                         "single moves"});
        for (size_t c = 1; c < configs.size(); ++c) {
            uint64_t flushes = 0, forced = 0, moves = 0;
            for (size_t s = 0; s < ws.size(); ++s) {
                flushes += sweep.results[s][c].stack.flushes;
                forced += sweep.results[s][c].stack.forced_flushes;
                moves += sweep.results[s][c].stack.single_moves;
            }
            table.addRow({std::to_string(configs[c].max_flushes),
                          Table::num(meanNormIpc(sweep, c), 3),
                          std::to_string(flushes),
                          std::to_string(forced),
                          std::to_string(moves)});
        }
        table.print();
        std::printf("\n");
    }
    reporter.addSweep(sweep, 0, "results_flush");
}

void
runEnergyComparison(const std::vector<std::shared_ptr<Workload>> &ws,
                    JsonReporter &reporter)
{
    std::printf("=== Ablation (c): energy — SMS vs enlarging the RB "
                "stack ===\n\n");
    std::vector<StackConfig> configs{
        StackConfig::baseline(8),  StackConfig::baseline(16),
        StackConfig::baseline(32), StackConfig::sms(),
        StackConfig::rbFull(),
    };
    SweepResult sweep = runSweep(ws, configs);

    // The energy roll-up sums every scene of each column, so a shard
    // worker cannot compute it; per-cell counters still ride in the
    // record for the merge.
    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader({"config", "norm IPC", "energy (uJ)",
                         "norm energy", "RB static %", "DRAM %"});
        double base_energy = 0.0;
        JsonValue energy = JsonValue::array();
        for (size_t c = 0; c < configs.size(); ++c) {
            EnergyBreakdown total;
            for (size_t s = 0; s < ws.size(); ++s) {
                GpuConfig gpu = makeGpuConfig(configs[c]);
                EnergyBreakdown e =
                    estimateEnergy(sweep.results[s][c], gpu);
                total.rb_dynamic += e.rb_dynamic;
                total.rb_static += e.rb_static;
                total.shared += e.shared;
                total.l1 += e.l1;
                total.l2 += e.l2;
                total.dram += e.dram;
                total.ops += e.ops;
            }
            if (c == 0)
                base_energy = total.total();
            table.addRow(
                {configs[c].name(),
                 Table::num(meanNormIpc(sweep, c), 3),
                 Table::num(total.total() / 1.0e6, 2),
                 Table::num(total.total() / base_energy, 3),
                 Table::num(100.0 * total.rb_static / total.total(), 1),
                 Table::num(100.0 * total.dram / total.total(), 1)});
            if (reporter.enabled()) {
                JsonValue row = JsonValue::object();
                row["config"] = configs[c].name();
                row["config_index"] = c;
                row["energy_pj"] = total.total();
                row["norm_energy"] = total.total() / base_energy;
                row["rb_static_pj"] = total.rb_static;
                row["dram_pj"] = total.dram;
                energy.push(row);
            }
        }
        table.print();
        if (reporter.enabled())
            reporter.record()["energy"] = energy;
        printPaperNote("§III-C/§VII-D motivation: enlarging the RB "
                       "stack buys IPC at a growing static-storage "
                       "energy cost; SMS reaches comparable IPC with "
                       "272 B of bookkeeping instead of kilobytes of "
                       "extra stack");
    }
    reporter.addSweep(sweep, 0, "results_energy");
}

void
BM_EnergyEstimate(benchmark::State &state)
{
    SimResult r;
    r.cycles = 100000;
    r.stack.pushes = 1000000;
    r.stack.pops = 1000000;
    GpuConfig config = GpuConfig::tableI();
    for (auto _ : state) {
        EnergyBreakdown e = estimateEnergy(r, config);
        benchmark::DoNotOptimize(e.total());
    }
}
BENCHMARK(BM_EnergyEstimate);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("ablation", argc, argv);
    auto workloads = deepScenes();
    runBorrowLimitSweep(workloads, reporter);
    runFlushLimitSweep(workloads, reporter);
    runEnergyComparison(workloads, reporter);
    reporter.finish();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
