/**
 * @file
 * Fig. 14 — effect of skewed bank access: average delay cycles caused
 * by shared-memory bank conflicts, before (RB_8+SH_8) and after
 * (RB_8+SH_8+SK) the skew, per workload. Paper: 27.3% average
 * reduction in delay cycles.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/core/stack_config.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig14(JsonReporter &reporter)
{
    std::printf("=== Fig. 14: bank-conflict delay cycles, SH_8 vs "
                "SH_8+SK ===\n\n");
    auto workloads = prepareAllScenes();
    std::vector<StackConfig> configs{
        StackConfig::withSh(8, 8, false, false),
        StackConfig::withSh(8, 8, true, false),
    };
    SweepResult sweep = runSweep(workloads, configs);

    // The reduction table pairs both configs of every scene; a shard
    // worker may own only half a pair, so the cross-cell view is
    // skipped (the merged record keeps the per-cell conflict cycles).
    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader({"scene", "conflict-cyc (SH_8)",
                         "conflict-cyc (SH_8+SK)", "reduction"});
        double sum_base = 0.0, sum_skew = 0.0;
        for (size_t s = 0; s < workloads.size(); ++s) {
            uint64_t base =
                sweep.results[s][0].shared_mem.conflict_cycles;
            uint64_t skew =
                sweep.results[s][1].shared_mem.conflict_cycles;
            sum_base += static_cast<double>(base);
            sum_skew += static_cast<double>(skew);
            double red =
                base > 0
                    ? (1.0 - static_cast<double>(skew) / base) * 100.0
                    : 0.0;
            table.addRow({sceneName(workloads[s]->id),
                          std::to_string(base), std::to_string(skew),
                          Table::num(red, 1) + "%"});
        }
        double total_red =
            sum_base > 0 ? (1.0 - sum_skew / sum_base) * 100.0 : 0.0;
        table.addRow({"ALL", Table::num(sum_base, 0),
                      Table::num(sum_skew, 0),
                      Table::num(total_red, 1) + "%"});
        table.print();
        printPaperNote("skewed bank access reduces conflict delay "
                       "cycles by 27.3% on average");

        if (reporter.enabled())
            reporter.record()["conflict_reduction_pct"] = total_red;
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

/** Microbenchmark: the skew formula itself. */
void
BM_SkewBaseEntry(benchmark::State &state)
{
    uint32_t sink = 0;
    for (auto _ : state) {
        for (uint32_t tid = 0; tid < kWarpSize; ++tid)
            sink += skewBaseEntry(tid, 8);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SkewBaseEntry);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig14", argc, argv);
    runFig14(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
