/**
 * @file
 * Fig. 6 — motivation sweeps.
 *
 * (a) IPC vs primary RB stack size {4, 8, 16, 32, FULL}, normalized to
 *     RB_8 (paper: -18.4%, baseline, +19.9%, +25.2%, ~+25.3%).
 * (b) IPC vs L1D size {16, 32, 64, 128, 256 KB} at RB_8, normalized to
 *     64 KB (paper: -9.6%, -4.5%, baseline, +4.5%, +12.6%).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig6a(const std::vector<std::shared_ptr<Workload>> &workloads,
         JsonReporter &reporter)
{
    std::printf("=== Fig. 6a: IPC vs RB stack size (normalized to RB_8) "
                "===\n\n");
    std::vector<StackConfig> configs{
        StackConfig::baseline(8),  StackConfig::baseline(4),
        StackConfig::baseline(16), StackConfig::baseline(32),
        StackConfig::rbFull(),
    };
    SweepResult sweep = runSweep(workloads, configs);

    // Shard workers skip the cross-cell tables; the merge rebuilds
    // the normalized view from all shards.
    if (!sweepShardSpec().active()) {
        Table table;
        std::vector<std::string> header{"scene"};
        for (const StackConfig &c : configs)
            header.push_back(c.name());
        table.setHeader(header);
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::vector<std::string> row{sceneName(workloads[s]->id)};
            for (size_t c = 0; c < configs.size(); ++c)
                row.push_back(Table::num(normIpc(sweep, s, c), 3));
            table.addRow(row);
        }
        std::vector<std::string> mean_row{"GEOMEAN"};
        for (size_t c = 0; c < configs.size(); ++c)
            mean_row.push_back(Table::num(meanNormIpc(sweep, c), 3));
        table.addRow(mean_row);
        table.print();
        printPaperNote("RB_4: -18.4%, RB_16: +19.9%, RB_32: +25.2%, "
                       "RB_FULL: ~+25.3% vs RB_8");
    }
    reporter.addSweep(sweep);
}

void
runFig6b(const std::vector<std::shared_ptr<Workload>> &workloads,
         JsonReporter &reporter)
{
    std::printf("\n=== Fig. 6b: IPC vs L1D size (RB_8, normalized to "
                "64KB) ===\n\n");
    const uint64_t kKb = 1024;
    std::vector<StackConfig> configs(5, StackConfig::baseline(8));
    std::vector<uint64_t> l1_sizes{64 * kKb, 16 * kKb, 32 * kKb,
                                   128 * kKb, 256 * kKb};
    SweepResult sweep = runSweep(workloads, configs, l1_sizes);

    if (!sweepShardSpec().active()) {
        Table table;
        std::vector<std::string> header{"scene"};
        for (uint64_t sz : l1_sizes)
            header.push_back(std::to_string(sz / kKb) + "KB");
        table.setHeader(header);
        for (size_t s = 0; s < workloads.size(); ++s) {
            std::vector<std::string> row{sceneName(workloads[s]->id)};
            for (size_t c = 0; c < configs.size(); ++c)
                row.push_back(Table::num(normIpc(sweep, s, c), 3));
            table.addRow(row);
        }
        std::vector<std::string> mean_row{"GEOMEAN"};
        for (size_t c = 0; c < configs.size(); ++c)
            mean_row.push_back(Table::num(meanNormIpc(sweep, c), 3));
        table.addRow(mean_row);
        table.print();
        printPaperNote("16KB: -9.6%, 32KB: -4.5%, 128KB: +4.5%, "
                       "256KB: +12.6% vs 64KB");
    }
    reporter.addSweep(sweep, 0, "results_l1");
}

void
BM_CacheAccessPattern(benchmark::State &state)
{
    Cache cache({64 * 1024, 0, kLineBytes});
    uint64_t i = 0;
    for (auto _ : state) {
        cache.access((i % 4096) * kLineBytes, false, TrafficClass::Node);
        ++i;
    }
    benchmark::DoNotOptimize(cache.stats().misses());
}
BENCHMARK(BM_CacheAccessPattern);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig6", argc, argv);
    auto workloads = prepareAllScenes();
    runFig6a(workloads, reporter);
    runFig6b(workloads, reporter);
    reporter.finish();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
