/**
 * @file
 * Fig. 4 — maximum, average and median traversal-stack depth per
 * workload, recorded at every push and pop across all rays (plus the
 * suite-wide summary the paper quotes: average/median between 4 and 5,
 * maximum around 30).
 *
 * Also registers a google-benchmark microbenchmark for the stack-depth
 * accounting hot path.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/core/reference_stack.hpp"
#include "src/util/rng.hpp"

using namespace sms;
using namespace sms::benchutil;

namespace {

void
runFig4(JsonReporter &reporter)
{
    std::printf("=== Fig. 4: traversal stack depth per workload ===\n\n");
    auto workloads = prepareAllScenes();

    // Depth statistics are configuration-independent; run the baseline.
    std::vector<StackConfig> configs{StackConfig::baseline(8)};
    SweepResult sweep = runSweep(workloads, configs);

    // A shard worker holds only its scenes; the cross-scene table and
    // the suite-wide histogram need the full grid (the merged record's
    // aggregate.depth_hist covers the latter).
    if (!sweepShardSpec().active()) {
        Table table;
        table.setHeader({"scene", "max", "avg", "median", "accesses"});
        Histogram overall(63);
        for (size_t s = 0; s < workloads.size(); ++s) {
            const Histogram &h = sweep.results[s][0].depth_hist;
            table.addRow({sceneName(workloads[s]->id),
                          std::to_string(h.maxSeen()),
                          Table::num(h.mean(), 2),
                          std::to_string(h.median()),
                          std::to_string(h.total())});
            overall.merge(h);
        }
        table.addRow({"ALL", std::to_string(overall.maxSeen()),
                      Table::num(overall.mean(), 2),
                      std::to_string(overall.median()),
                      std::to_string(overall.total())});
        table.print();

        printPaperNote("overall average and median depths range "
                       "between 4 and 5; maximum reaches around 30");

        if (reporter.enabled())
            reporter.record()["overall_depth_hist"] = toJson(overall);
    }

    reporter.addSweep(sweep);
    reporter.finish();
}

/** Microbenchmark: push/pop accounting cost of the reference stack. */
void
BM_ReferenceStackChurn(benchmark::State &state)
{
    Pcg32 rng(42);
    for (auto _ : state) {
        ReferenceStack stack;
        uint64_t churn = 0;
        for (int i = 0; i < 1024; ++i) {
            if (stack.empty() || rng.nextFloat() < 0.55f)
                stack.push(rng.nextU32());
            else
                churn += stack.pop();
        }
        benchmark::DoNotOptimize(churn);
    }
}
BENCHMARK(BM_ReferenceStackChurn);

} // namespace

int
main(int argc, char **argv)
{
    JsonReporter reporter("fig4", argc, argv);
    runFig4(reporter);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
